type verdict = Propagate | Block

let verdict_to_string = function Propagate -> "propagate" | Block -> "block"

type tag_decision = {
  tag : string;
  under : float;
  over : float;
  marginal : float;
  verdict : verdict;
}

type body =
  | Decision of {
      algorithm : string;
      flow : string;
      space : int;
      pollution : float;
      tags : tag_decision list;
    }
  | Eviction of { at : string; victim : string; incoming : string }
  | Selection of {
      policy : string;
      flow : string;
      candidates : string list;
      chosen : string list;
    }
  | Note of string

type record = { id : int; step : int; pc : int; body : body }

type t = {
  enabled : bool;
  capacity : int;
  mutable ring : record array;  (* grown geometrically up to capacity *)
  mutable len : int;
  mutable dropped : int;
  mutable next_id : int;
  sink : (string -> unit) option;
  mutable tracer : Tracer.t option;
  mutable ctx_step : int;
  mutable ctx_pc : int;
  mutable ctx_flow : string;
}

let null =
  {
    enabled = false;
    capacity = 0;
    ring = [||];
    len = 0;
    dropped = 0;
    next_id = 0;
    sink = None;
    tracer = None;
    ctx_step = -1;
    ctx_pc = -1;
    ctx_flow = "";
  }

let create ?(capacity = 65536) ?sink () =
  if capacity < 1 then invalid_arg "Audit.create: non-positive capacity";
  {
    enabled = true;
    capacity;
    ring = [||];
    len = 0;
    dropped = 0;
    next_id = 0;
    sink;
    tracer = None;
    ctx_step = -1;
    ctx_pc = -1;
    ctx_flow = "";
  }

let enabled t = t.enabled
let link_tracer t tracer = if t.enabled then t.tracer <- Some tracer

let set_context t ?step ?pc ?flow () =
  if t.enabled then begin
    (match step with Some s -> t.ctx_step <- s | None -> ());
    (match pc with Some p -> t.ctx_pc <- p | None -> ());
    match flow with Some f -> t.ctx_flow <- f | None -> ()
  end

let next_id t = t.next_id
let length t = t.len
let dropped t = t.dropped
let records t = Array.sub t.ring 0 t.len

(* -- JSON ----------------------------------------------------------- *)

(* Non-finite floats keep their Prometheus spelling but as JSON
   strings, so the line stays parseable without losing the value. *)
let json_float v =
  if Float.is_nan v || v = infinity || v = neg_infinity then
    Registry.json_string (Registry.fmt_value v)
  else Registry.fmt_value v

let json_string_list xs =
  "[" ^ String.concat "," (List.map Registry.json_string xs) ^ "]"

let kind_of = function
  | Decision _ -> "decision"
  | Eviction _ -> "eviction"
  | Selection _ -> "selection"
  | Note _ -> "note"

let record_to_json r =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf "{\"id\":%d,\"kind\":%s,\"step\":%d,\"pc\":%d" r.id
       (Registry.json_string (kind_of r.body))
       r.step r.pc);
  (match r.body with
  | Decision { algorithm; flow; space; pollution; tags } ->
    Buffer.add_string buf
      (Printf.sprintf ",\"alg\":%s,\"flow\":%s,\"space\":%d,\"pollution\":%s,\"tags\":["
         (Registry.json_string algorithm)
         (Registry.json_string flow)
         space (json_float pollution));
    List.iteri
      (fun i td ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "{\"tag\":%s,\"under\":%s,\"over\":%s,\"marginal\":%s,\"verdict\":%s}"
             (Registry.json_string td.tag)
             (json_float td.under) (json_float td.over)
             (json_float td.marginal)
             (Registry.json_string (verdict_to_string td.verdict))))
      tags;
    Buffer.add_char buf ']'
  | Eviction { at; victim; incoming } ->
    Buffer.add_string buf
      (Printf.sprintf ",\"at\":%s,\"victim\":%s,\"incoming\":%s"
         (Registry.json_string at)
         (Registry.json_string victim)
         (Registry.json_string incoming))
  | Selection { policy; flow; candidates; chosen } ->
    Buffer.add_string buf
      (Printf.sprintf ",\"policy\":%s,\"flow\":%s,\"candidates\":%s,\"chosen\":%s"
         (Registry.json_string policy)
         (Registry.json_string flow)
         (json_string_list candidates)
         (json_string_list chosen))
  | Note text ->
    Buffer.add_string buf
      (Printf.sprintf ",\"text\":%s" (Registry.json_string text)));
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create (t.len * 160) in
  for i = 0 to t.len - 1 do
    Buffer.add_string buf (record_to_json t.ring.(i));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* -- Recording ------------------------------------------------------ *)

let push t record =
  if t.len < t.capacity then begin
    if t.len = Array.length t.ring then begin
      let grown = min t.capacity (max 16 (2 * Array.length t.ring)) in
      let ring = Array.make grown record in
      Array.blit t.ring 0 ring 0 t.len;
      t.ring <- ring
    end;
    t.ring.(t.len) <- record;
    t.len <- t.len + 1
  end
  else t.dropped <- t.dropped + 1;
  (match t.sink with
  | Some write -> write (record_to_json record)
  | None -> ());
  match t.tracer with
  | Some tracer ->
    Tracer.instant tracer
      ~args:
        [ ("id", string_of_int record.id); ("kind", kind_of record.body) ]
      "audit"
  | None -> ()

let emit t ?step ?pc body =
  let id = t.next_id in
  t.next_id <- id + 1;
  let step = match step with Some s -> s | None -> t.ctx_step in
  let pc = match pc with Some p -> p | None -> t.ctx_pc in
  push t { id; step; pc; body }

let record_decision t ~algorithm ~space ~pollution tags =
  if t.enabled then
    emit t (Decision { algorithm; flow = t.ctx_flow; space; pollution; tags })

let record_eviction t ?step ?pc ~at ~victim ~incoming () =
  if t.enabled then emit t ?step ?pc (Eviction { at; victim; incoming })

let record_selection t ?step ~policy ~flow ~candidates ~chosen () =
  if t.enabled then emit t ?step (Selection { policy; flow; candidates; chosen })

let record_note t text = if t.enabled then emit t (Note text)
