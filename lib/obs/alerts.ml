(* Multi-window multi-burn-rate alerting in the Google-SRE style over
   the bounded Tsdb. Burn rate of a window = (fraction of the
   window's samples violating the objective) / error budget; a window
   pair is active when both its fast and slow burn clear the pair's
   threshold. Alert state is an explicit machine whose transitions
   depend only on the observed (at, value) stream — see DESIGN §15. *)

type severity = Ticket | Page

let severity_to_string = function Page -> "page" | Ticket -> "ticket"
let severity_rank = function Page -> 2 | Ticket -> 1

let severity_of_string = function
  | "page" -> Ok Page
  | "ticket" -> Ok Ticket
  | s -> Error (Printf.sprintf "unknown severity %S (want page|ticket)" s)

let worse a b = if severity_rank a >= severity_rank b then a else b

type window_pair = {
  fast : float;
  slow : float;
  burn : float;
  pair_severity : severity;
}

type rule = {
  alert_name : string;
  signal : string;
  cmp : Health.cmp;
  objective : float;
  budget : float;
  windows : window_pair list;
  for_ : float;
  keep_firing : float;
}

(* The classic SRE pairs, scaled to the 1-unit-per-observation clock
   the CLI tick drives: a fast page pair and a slower ticket pair. *)
let default_windows =
  [
    { fast = 60.0; slow = 300.0; burn = 14.4; pair_severity = Page };
    { fast = 300.0; slow = 3600.0; burn = 6.0; pair_severity = Ticket };
  ]

let rule ?name ?(budget = 0.01) ?(windows = default_windows) ?(for_ = 0.0)
    ?(keep_firing = 0.0) ~signal ~cmp ~objective () =
  if not (budget > 0.0) then invalid_arg "Alerts.rule: non-positive budget";
  if windows = [] then invalid_arg "Alerts.rule: no window pairs";
  List.iter
    (fun w ->
      if not (w.fast > 0.0) then invalid_arg "Alerts.rule: non-positive fast";
      if w.slow < w.fast then invalid_arg "Alerts.rule: slow shorter than fast";
      if not (w.burn > 0.0) then
        invalid_arg "Alerts.rule: non-positive burn threshold")
    windows;
  if for_ < 0.0 then invalid_arg "Alerts.rule: negative for";
  if keep_firing < 0.0 then invalid_arg "Alerts.rule: negative keep";
  let alert_name = match name with Some n -> n | None -> signal in
  { alert_name; signal; cmp; objective; budget; windows; for_; keep_firing }

(* -- grammar ------------------------------------------------------------ *)

let window_pair_to_string w =
  Printf.sprintf "%s/%s@%s@%s" (Registry.fmt_value w.fast)
    (Registry.fmt_value w.slow) (Registry.fmt_value w.burn)
    (severity_to_string w.pair_severity)

let rule_to_string r =
  let prefix = if r.alert_name = r.signal then "" else r.alert_name ^ ":" in
  Printf.sprintf "%s%s%s%s;budget=%s;windows=%s;for=%s;keep=%s" prefix
    r.signal
    (Health.cmp_to_string r.cmp)
    (Registry.fmt_value r.objective)
    (Registry.fmt_value r.budget)
    (String.concat "," (List.map window_pair_to_string r.windows))
    (Registry.fmt_value r.for_)
    (Registry.fmt_value r.keep_firing)

let objective_to_string r =
  Printf.sprintf "%s%s%s" r.signal
    (Health.cmp_to_string r.cmp)
    (Registry.fmt_value r.objective)

let parse_window_pair s =
  let malformed () =
    Error (Printf.sprintf "bad window pair %S (want FAST/SLOW@BURN[@SEV])" s)
  in
  let parts =
    match String.split_on_char '@' s with
    | [ span; burn ] -> Some (span, burn, Ok Page)
    | [ span; burn; sev ] -> Some (span, burn, severity_of_string sev)
    | _ -> None
  in
  match parts with
  | None -> malformed ()
  | Some (_, _, Error e) -> Error e
  | Some (span, burn, Ok pair_severity) -> (
    match String.split_on_char '/' span with
    | [ fast; slow ] -> (
      match
        ( float_of_string_opt (String.trim fast),
          float_of_string_opt (String.trim slow),
          float_of_string_opt (String.trim burn) )
      with
      | Some fast, Some slow, Some burn ->
        Ok { fast; slow; burn; pair_severity }
      | _ -> malformed ())
    | _ -> malformed ())

let rec collect_results = function
  | [] -> Ok []
  | Error e :: _ -> Error e
  | Ok x :: rest -> Result.map (fun xs -> x :: xs) (collect_results rest)

(* [NAME:]SIGNAL(<=|<|>=|>)OBJECTIVE[;budget=B][;windows=F/S@BURN[@SEV],..]
   [;for=D][;keep=K] — the head reuses the Health rule grammar. *)
let parse_rule s =
  match String.split_on_char ';' s with
  | [] -> Error "empty alert rule"
  | head :: opts -> (
    match Health.parse_rule head with
    | Error e -> Error e
    | Ok h -> (
      let budget = ref 0.01 and windows = ref default_windows in
      let for_ = ref 0.0 and keep = ref 0.0 in
      let parse_opt opt =
        match String.index_opt opt '=' with
        | None -> Error (Printf.sprintf "bad alert option %S (want key=value)" opt)
        | Some eq -> (
          let key = String.trim (String.sub opt 0 eq) in
          let value =
            String.trim
              (String.sub opt (eq + 1) (String.length opt - eq - 1))
          in
          let float_opt cell =
            match float_of_string_opt value with
            | Some v ->
              cell := v;
              Ok ()
            | None -> Error (Printf.sprintf "bad %s in alert rule %S" key s)
          in
          match key with
          | "budget" -> float_opt budget
          | "for" -> float_opt for_
          | "keep" -> float_opt keep
          | "windows" -> (
            match
              collect_results
                (List.map parse_window_pair (String.split_on_char ',' value))
            with
            | Ok [] -> Error (Printf.sprintf "empty windows in %S" s)
            | Ok ws ->
              windows := ws;
              Ok ()
            | Error e -> Error e)
          | _ -> Error (Printf.sprintf "unknown alert option %S" key))
      in
      match collect_results (List.map parse_opt opts) with
      | Error e -> Error e
      | Ok _ -> (
        let name =
          if h.Health.rule_name = h.Health.signal then None
          else Some h.Health.rule_name
        in
        match
          rule ?name ~budget:!budget ~windows:!windows ~for_:!for_
            ~keep_firing:!keep ~signal:h.Health.signal ~cmp:h.Health.cmp
            ~objective:h.Health.bound ()
        with
        | r -> Ok r
        | exception Invalid_argument msg -> Error msg)))

(* -- state machine ------------------------------------------------------ *)

type phase =
  | Inactive
  | Pending of { since : float; severity : severity }
  | Firing of { since : float; last_bad : float; severity : severity }

type transition = To_pending | To_firing | To_resolved | To_cancelled

let transition_to_string = function
  | To_pending -> "pending"
  | To_firing -> "firing"
  | To_resolved -> "resolved"
  | To_cancelled -> "cancelled"

type incident = {
  seq : int;
  at : float;
  alert : string;
  transition : transition;
  severity : severity;
  value : float;
  burn_fast : float;
  burn_slow : float;
}

type alert_state = {
  r : rule;
  mutable phase : phase;
  mutable fired_total : int;
  mutable last_value : float option;
  mutable last_burn : float * float;  (* representative (fast, slow) *)
}

type t = {
  tsdb : Tsdb.t;
  states : alert_state list;
  ring_capacity : int;
  ring : incident option array;  (* keep-newest circular *)
  mutable ring_next : int;
  mutable ring_len : int;
  mutable incidents_total : int;
  mutable evals : int;
  mutable tracer : Tracer.t option;
}

let create ?(capacity = 1024) ?tsdb ~rules () =
  if capacity < 1 then invalid_arg "Alerts.create: non-positive capacity";
  let tsdb = match tsdb with Some d -> d | None -> Tsdb.create () in
  {
    tsdb;
    states =
      List.map
        (fun r ->
          {
            r;
            phase = Inactive;
            fired_total = 0;
            last_value = None;
            last_burn = (0.0, 0.0);
          })
        rules;
    ring_capacity = capacity;
    ring = Array.make capacity None;
    ring_next = 0;
    ring_len = 0;
    incidents_total = 0;
    evals = 0;
    tracer = None;
  }

let tsdb t = t.tsdb
let rules t = List.map (fun st -> st.r) t.states

let phase_of t name =
  List.find_map
    (fun st -> if st.r.alert_name = name then Some st.phase else None)
    t.states
let evals t = t.evals
let incidents_total t = t.incidents_total
let dropped t = t.incidents_total - t.ring_len
let link_tracer t tracer = t.tracer <- Some tracer

(* Incident ring keeps the *newest* transitions (unlike the audit
   ring's keep-oldest): the /alerts history is about what is
   happening, not how the run began. *)
let record t ~at st transition severity (burn_fast, burn_slow) =
  let value = match st.last_value with Some v -> v | None -> nan in
  let inc =
    {
      seq = t.incidents_total;
      at;
      alert = st.r.alert_name;
      transition;
      severity;
      value;
      burn_fast;
      burn_slow;
    }
  in
  t.incidents_total <- t.incidents_total + 1;
  t.ring.(t.ring_next) <- Some inc;
  t.ring_next <- (t.ring_next + 1) mod t.ring_capacity;
  if t.ring_len < t.ring_capacity then t.ring_len <- t.ring_len + 1;
  match t.tracer with
  | None -> ()
  | Some tracer ->
    Tracer.instant tracer
      ("alert_" ^ transition_to_string transition)
      ~args:
        [
          ("alert", st.r.alert_name);
          ("severity", severity_to_string severity);
          ("value", Registry.fmt_value value);
          ("burn_fast", Registry.fmt_value burn_fast);
          ("burn_slow", Registry.fmt_value burn_slow);
        ]

let incidents t =
  List.init t.ring_len (fun i ->
      let idx =
        (t.ring_next - t.ring_len + i + t.ring_capacity) mod t.ring_capacity
      in
      match t.ring.(idx) with
      | Some inc -> inc
      | None -> assert false)

let bad_fraction t (r : rule) ~at ~window =
  let bad, n =
    Tsdb.window_fold t.tsdb r.signal ~at ~window ~init:(0, 0)
      ~f:(fun (bad, n) _ v ->
        ((if Health.holds r.cmp v r.objective then bad else bad + 1), n + 1))
  in
  if n = 0 then 0.0 else float_of_int bad /. float_of_int n

let pair_burn t r pair ~at =
  ( bad_fraction t r ~at ~window:pair.fast /. r.budget,
    bad_fraction t r ~at ~window:pair.slow /. r.budget )

(* The pair whose burns the incident reports: the worst active pair,
   or the first configured pair while nothing is active. *)
let judge t st ~at =
  let burns =
    List.map (fun p -> (p, pair_burn t st.r p ~at)) st.r.windows
  in
  let active =
    List.filter (fun (p, (bf, bs)) -> bf >= p.burn && bs >= p.burn) burns
  in
  let severity =
    List.fold_left
      (fun acc (p, _) ->
        match acc with
        | None -> Some p.pair_severity
        | Some s -> Some (worse s p.pair_severity))
      None active
  in
  let representative =
    match
      List.find_opt
        (fun (p, _) -> Some p.pair_severity = severity)
        (match active with [] -> burns | _ -> active)
    with
    | Some (_, b) -> b
    | None -> (match burns with (_, b) :: _ -> b | [] -> (0.0, 0.0))
  in
  (severity, representative)

let eval_rule t ~at st =
  let severity, burn = judge t st ~at in
  st.last_value <- Option.map snd (Tsdb.latest t.tsdb st.r.signal);
  st.last_burn <- burn;
  let fire sev =
    st.phase <- Firing { since = at; last_bad = at; severity = sev };
    st.fired_total <- st.fired_total + 1;
    record t ~at st To_firing sev burn
  in
  match (st.phase, severity) with
  | Inactive, None -> ()
  | Inactive, Some sev ->
    st.phase <- Pending { since = at; severity = sev };
    record t ~at st To_pending sev burn;
    (* a zero [for_] fires on the same evaluation that went pending *)
    if st.r.for_ <= 0.0 then fire sev
  | Pending p, Some sev ->
    let sev = worse p.severity sev in
    if at -. p.since >= st.r.for_ then fire sev
    else st.phase <- Pending { p with severity = sev }
  | Pending p, None ->
    st.phase <- Inactive;
    record t ~at st To_cancelled p.severity burn
  | Firing f, Some sev ->
    st.phase <- Firing { f with last_bad = at; severity = worse f.severity sev }
  | Firing f, None ->
    (* [keep_firing] holds the alert through flaps: only a quiet spell
       of at least that long resolves it *)
    if at -. f.last_bad >= st.r.keep_firing then begin
      st.phase <- Inactive;
      record t ~at st To_resolved f.severity burn
    end

let eval t ~at =
  t.evals <- t.evals + 1;
  List.iter (eval_rule t ~at) t.states

let observe t ~at signals =
  Tsdb.observe t.tsdb ~at signals;
  eval t ~at

(* -- verdicts ----------------------------------------------------------- *)

let firing t =
  List.filter_map
    (fun st ->
      match st.phase with
      | Firing f -> Some (st.r, f.severity)
      | Inactive | Pending _ -> None)
    t.states

let any_firing t = firing t <> []

let worst_severity t =
  List.fold_left
    (fun acc (_, sev) ->
      match acc with None -> Some sev | Some s -> Some (worse s sev))
    None (firing t)

let severity_code t =
  match worst_severity t with
  | None -> 0
  | Some Ticket -> 1
  | Some Page -> 2

let render_firing t =
  String.concat ""
    (List.map
       (fun (r, sev) ->
         Printf.sprintf "firing: %s severity=%s\n" r.alert_name
           (severity_to_string sev))
       (firing t))

(* -- JSON --------------------------------------------------------------- *)

(* Non-finite floats keep their Prometheus spelling but as JSON
   strings (the audit ring's convention). *)
let json_num v =
  if Float.is_nan v || v = infinity || v = neg_infinity then
    Registry.json_string (Registry.fmt_value v)
  else Registry.fmt_value v

let json_str = Registry.json_string

let phase_to_string = function
  | Inactive -> "ok"
  | Pending _ -> "pending"
  | Firing _ -> "firing"

let incident_json inc =
  Printf.sprintf
    "{\"alert\":%s,\"at\":%s,\"burn_fast\":%s,\"burn_slow\":%s,\"seq\":%d,\
     \"severity\":%s,\"transition\":%s,\"value\":%s}"
    (json_str inc.alert) (json_num inc.at) (json_num inc.burn_fast)
    (json_num inc.burn_slow) inc.seq
    (json_str (severity_to_string inc.severity))
    (json_str (transition_to_string inc.transition))
    (json_num inc.value)

let incidents_to_jsonl t =
  match incidents t with
  | [] -> ""
  | incs -> String.concat "\n" (List.map incident_json incs) ^ "\n"

let window_json w =
  Printf.sprintf "{\"burn\":%s,\"fast\":%s,\"severity\":%s,\"slow\":%s}"
    (json_num w.burn) (json_num w.fast)
    (json_str (severity_to_string w.pair_severity))
    (json_num w.slow)

let alert_json st =
  let burn_fast, burn_slow = st.last_burn in
  let severity, since =
    match st.phase with
    | Inactive -> ("null", "null")
    | Pending p ->
      (json_str (severity_to_string p.severity), json_num p.since)
    | Firing f ->
      (json_str (severity_to_string f.severity), json_num f.since)
  in
  Printf.sprintf
    "{\"budget\":%s,\"burn_fast\":%s,\"burn_slow\":%s,\"fired_total\":%d,\
     \"for\":%s,\"keep_firing\":%s,\"name\":%s,\"objective\":%s,\
     \"severity\":%s,\"signal\":%s,\"since\":%s,\"state\":%s,\"value\":%s,\
     \"windows\":[%s]}"
    (json_num st.r.budget) (json_num burn_fast) (json_num burn_slow)
    st.fired_total
    (json_num st.r.for_)
    (json_num st.r.keep_firing)
    (json_str st.r.alert_name)
    (json_str (objective_to_string st.r))
    severity
    (json_str st.r.signal)
    since
    (json_str (phase_to_string st.phase))
    (match st.last_value with None -> "null" | Some v -> json_num v)
    (String.concat "," (List.map window_json st.r.windows))

let worst_to_string t =
  match worst_severity t with
  | None -> "ok"
  | Some sev -> severity_to_string sev

(* Keys sorted at every level, numbers canonical: under a
   deterministic (at, value) stream this body is byte-stable. *)
let to_json t =
  Printf.sprintf
    "{\"alerts\":[%s],\"dropped\":%d,\"evals\":%d,\"firing\":[%s],\
     \"incidents\":[%s],\"incidents_total\":%d,\"worst\":%s}"
    (String.concat "," (List.map alert_json t.states))
    (dropped t) t.evals
    (String.concat ","
       (List.map (fun (r, _) -> json_str r.alert_name) (firing t)))
    (String.concat "," (List.map incident_json (incidents t)))
    t.incidents_total
    (json_str (worst_to_string t))

(* -- exposition --------------------------------------------------------- *)

let query_payload t query =
  match List.assoc_opt "signal" query with
  | None | Some "" ->
    Server.json ~status:400
      (Printf.sprintf "{\"error\":\"missing ?signal=\",\"signals\":[%s]}"
         (String.concat "," (List.map json_str (Tsdb.names t.tsdb))))
  | Some signal -> (
    match Tsdb.series t.tsdb signal with
    | None ->
      Server.json ~status:404
        (Printf.sprintf "{\"error\":\"unknown signal\",\"signals\":[%s]}"
           (String.concat "," (List.map json_str (Tsdb.names t.tsdb))))
    | Some _ ->
      let num key default =
        match List.assoc_opt key query with
        | Some s -> (
          match float_of_string_opt s with Some v -> v | None -> default)
        | None -> default
      in
      let from = num "from" 0.0 and step = num "step" 0.0 in
      Server.json (Tsdb.query_json t.tsdb signal ~from ~step))

let routes t =
  [
    Server.route ~file:"alerts.json"
      ~describe:"burn-rate alert states + incident history" "/alerts"
      (fun () -> Server.json (to_json t));
    Server.route_q ~file:"query.json"
      ~describe:"tsdb range query: ?signal=&from=&step=" "/query"
      (query_payload t);
    Server.route ~file:"alertz.jsonl"
      ~describe:"incident timeline ring (JSONL)" "/alertz" (fun () ->
        Server.text (incidents_to_jsonl t));
  ]
