(** Log-bucketed histograms.

    Bucket [i] (for [i < buckets - 1]) covers the half-open value range
    [(ub(i-1), ub(i)]] with upper bound [ub(i) = lo * growth^i]; the
    first bucket additionally absorbs everything [<= lo] and the last
    bucket is the [+inf] overflow. Geometric bucketing keeps relative
    error bounded across many orders of magnitude at a fixed, small
    memory cost — the standard shape for latency distributions
    (HdrHistogram, Prometheus). Observation is a binary search over the
    precomputed bounds: O(log buckets), allocation-free, and fully
    deterministic. *)

type t

val create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> t
(** Defaults: [lo = 1.0], [growth = 2.0], [buckets = 32]. Raises
    [Invalid_argument] if [lo <= 0], [growth <= 1] or [buckets < 2]. *)

val observe : t -> float -> unit

val count : t -> int
(** Total observations. *)

val sum : t -> float
val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val mean : t -> float
(** [nan] when empty. *)

val num_buckets : t -> int

val bucket_index : t -> float -> int
(** Bucket an observation of [v] would land in. *)

val upper_bound : t -> int -> float
(** Inclusive upper bound of bucket [i]; [infinity] for the last. *)

val bucket_count : t -> int -> int
(** Observations recorded in bucket [i]. *)

val buckets : t -> (float * int) array
(** [(upper_bound, count)] for every bucket, in order. *)

val cumulative_buckets : t -> (float * int) array
(** Like {!buckets} but with counts accumulated from below — the shape
    Prometheus exposition wants. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) by
    linear interpolation inside the bucket holding the target rank;
    exact [min]/[max] are used at the extremes and to clamp the
    estimate. [nan] when empty; raises [Invalid_argument] when [q] is
    outside [0, 1]. *)

val bounds : t -> float array
(** The finite upper bounds (everything but the [+inf] overflow), in
    increasing order; a copy. *)

val same_layout : t -> t -> bool
(** Whether the two histograms share one bucket layout (identical
    bound arrays) — the precondition of {!merge}. *)

val of_buckets :
  bounds:float array ->
  counts:int array ->
  sum:float ->
  min_value:float ->
  max_value:float ->
  t
(** Rebuild a histogram from its raw parts (e.g. decoded from a
    {!Registry.Snapshot}); [total] is the count sum, and [min_value]/
    [max_value] are ignored (forced to [nan]) when the counts are all
    zero. Raises [Invalid_argument] on a count/bound length mismatch,
    non-increasing or non-positive bounds, or a negative count. *)

val merge : t -> t -> t
(** Bucket-wise sum into a fresh histogram: counts, total and sum add;
    min/max combine (ignoring an empty side). Exact — a quantile of
    the merge is computed from the merged buckets, never by averaging
    per-part quantiles. Commutative and associative, with the empty
    histogram as identity. Raises [Invalid_argument] unless
    {!same_layout}. *)

val reset : t -> unit
