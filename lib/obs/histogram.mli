(** Log-bucketed histograms.

    Bucket [i] (for [i < buckets - 1]) covers the half-open value range
    [(ub(i-1), ub(i)]] with upper bound [ub(i) = lo * growth^i]; the
    first bucket additionally absorbs everything [<= lo] and the last
    bucket is the [+inf] overflow. Geometric bucketing keeps relative
    error bounded across many orders of magnitude at a fixed, small
    memory cost — the standard shape for latency distributions
    (HdrHistogram, Prometheus). Observation is a binary search over the
    precomputed bounds: O(log buckets), allocation-free, and fully
    deterministic. *)

type t

val create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> t
(** Defaults: [lo = 1.0], [growth = 2.0], [buckets = 32]. Raises
    [Invalid_argument] if [lo <= 0], [growth <= 1] or [buckets < 2]. *)

val observe : t -> float -> unit

val count : t -> int
(** Total observations. *)

val sum : t -> float
val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val mean : t -> float
(** [nan] when empty. *)

val num_buckets : t -> int

val bucket_index : t -> float -> int
(** Bucket an observation of [v] would land in. *)

val upper_bound : t -> int -> float
(** Inclusive upper bound of bucket [i]; [infinity] for the last. *)

val bucket_count : t -> int -> int
(** Observations recorded in bucket [i]. *)

val buckets : t -> (float * int) array
(** [(upper_bound, count)] for every bucket, in order. *)

val cumulative_buckets : t -> (float * int) array
(** Like {!buckets} but with counts accumulated from below — the shape
    Prometheus exposition wants. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) by
    linear interpolation inside the bucket holding the target rank;
    exact [min]/[max] are used at the extremes and to clamp the
    estimate. [nan] when empty; raises [Invalid_argument] when [q] is
    outside [0, 1]. *)

val reset : t -> unit
