module Snapshot = Registry.Snapshot

type report = {
  node : string;
  healthy : bool;
  health : string;
  snapshot : Snapshot.t;
}

type fetch = unit -> (report, string) result

type node_state = {
  ns_name : string;
  fetch : fetch;
  mutable report : report option;
  mutable node_id : string;
  mutable last_seen : float;  (* nan before the first successful scrape *)
  mutable last_ok : bool;  (* did the most recent scrape attempt succeed? *)
  mutable failures : int;
  mutable last_error : string option;
  mutable prev_sample : (float * int) option;  (* (at, requests_total) *)
  mutable rate : float;  (* nan until two successful scrapes *)
}

type t = {
  nodes : node_state list;
  stale_after : float;
  fleet_health : Health.t option;
  fleet_alerts : Alerts.t option;
  mutable last_at : float;
  mutable scrapes : int;
  mutable merged_snapshot : Snapshot.t;
  mutable last_signals : (string * float) list;
}

let default_rules =
  [ Health.rule ~signal:"fleet_unreachable" ~cmp:Health.Le ~bound:0.0 () ]

let create ?(stale_after = 60.0) ?health ?alerts nodes =
  if nodes = [] then invalid_arg "Fleet.create: need at least one node";
  if stale_after <= 0.0 then
    invalid_arg "Fleet.create: stale_after must be positive";
  {
    nodes =
      List.map
        (fun (name, fetch) ->
          {
            ns_name = name;
            fetch;
            report = None;
            node_id = name;
            last_seen = nan;
            last_ok = false;
            failures = 0;
            last_error = None;
            prev_sample = None;
            rate = nan;
          })
        nodes;
    stale_after;
    fleet_health = health;
    fleet_alerts = alerts;
    last_at = nan;
    scrapes = 0;
    merged_snapshot = [];
    last_signals = [];
  }

let health t = t.fleet_health
let alerts t = t.fleet_alerts
let stale_after t = t.stale_after
let scrapes t = t.scrapes

(* -- node alert attribution --------------------------------------------- *)

(* Nodes running a burn-rate engine splice [firing: NAME severity=SEV]
   lines into their /healthz body (Telemetry.health_verdict); parsing
   them back out of [report.health] gives the fleet per-node alert
   attribution without touching the wire protocol. *)
let firing_prefix = "firing: "

let parse_firing body =
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         let pl = String.length firing_prefix in
         if String.length line <= pl || String.sub line 0 pl <> firing_prefix
         then None
         else
           let rest = String.sub line pl (String.length line - pl) in
           match String.index_opt rest ' ' with
           | None -> None
           | Some i ->
             let name = String.sub rest 0 i in
             let tail = String.sub rest (i + 1) (String.length rest - i - 1) in
             let sev_prefix = "severity=" in
             let sl = String.length sev_prefix in
             if
               name = ""
               || String.length tail <= sl
               || String.sub tail 0 sl <> sev_prefix
             then None
             else
               match
                 Alerts.severity_of_string
                   (String.trim
                      (String.sub tail sl (String.length tail - sl)))
               with
               | Ok sev -> Some (name, sev)
               | Error _ -> None)

(* -- snapshot probes ---------------------------------------------------- *)

let counter_sum name rows =
  List.fold_left
    (fun acc (r : Snapshot.row) ->
      match r.Snapshot.value with
      | Snapshot.Counter c when r.Snapshot.name = name -> acc + c
      | _ -> acc)
    0 rows

let gauge_sum ?label name rows =
  let matches (r : Snapshot.row) =
    r.Snapshot.name = name
    &&
    match label with
    | None -> true
    | Some (k, v) -> List.assoc_opt k r.Snapshot.labels = Some v
  in
  List.fold_left
    (fun acc (r : Snapshot.row) ->
      match r.Snapshot.value with
      | Snapshot.Gauge g when matches r -> (
        match acc with None -> Some g | Some s -> Some (s +. g))
      | _ -> acc)
    None rows

let hist_quantile ~name ~label q rows =
  let found =
    List.find_opt
      (fun (r : Snapshot.row) ->
        r.Snapshot.name = name
        && (match r.Snapshot.value with Snapshot.Hist _ -> true | _ -> false)
        &&
        let k, v = label in
        List.assoc_opt k r.Snapshot.labels = Some v)
      rows
  in
  match found with
  | Some { Snapshot.value = Snapshot.Hist h; _ } ->
    Histogram.quantile (Snapshot.to_histogram h) q
  | _ -> nan

let requests_total rows = counter_sum "mitos_net_requests_total" rows

(* -- scraping ----------------------------------------------------------- *)

let fresh t ns =
  (not (Float.is_nan ns.last_seen)) && t.last_at -. ns.last_seen <= t.stale_after

let fresh_reports t =
  List.filter_map
    (fun ns ->
      match ns.report with
      | Some r when fresh t ns -> Some (ns, r)
      | _ -> None)
    t.nodes

let compute_signals t =
  let live = fresh_reports t in
  (* reachability is about the last scrape *attempt*, not snapshot
     freshness: a node whose fetch just failed counts as unreachable
     immediately, even while its last snapshot still merges *)
  let up = List.length (List.filter (fun ns -> ns.last_ok) t.nodes) in
  let totals =
    List.map (fun (_, r) -> requests_total r.snapshot) live
  in
  let req_sum = List.fold_left ( + ) 0 totals in
  let skew =
    match totals with
    | [] -> 1.0
    | _ ->
      let mean =
        float_of_int req_sum /. float_of_int (List.length totals)
      in
      if mean <= 0.0 then 1.0
      else float_of_int (List.fold_left max 0 totals) /. mean
  in
  let p99 =
    hist_quantile ~name:"mitos_net_request_ns" ~label:("op", "decide") 0.99
      t.merged_snapshot
  in
  let over_taint =
    (* fleet over-taint: total MITOS-tainted bytes across the fleet
       against the total propagate-all bound, where nodes report the
       sweep gauges (pilot-style nodes); absent otherwise *)
    let sum name label =
      List.fold_left
        (fun acc (_, r) ->
          match gauge_sum ?label:(Option.map Fun.id label) name r.snapshot with
          | Some v -> acc +. v
          | None -> acc)
        0.0 live
    in
    let tainted =
      sum "mitos_sweep_tainted_bytes" (Some ("policy", "mitos"))
    in
    let bound = sum "mitos_sweep_over_taint_bound" None in
    if bound > 0.0 then [ ("fleet_over_taint_ratio", tainted /. bound) ]
    else []
  in
  let firing_nodes =
    List.length
      (List.filter (fun (_, r) -> parse_firing r.health <> []) live)
  in
  over_taint
  @ [
      ("fleet_nodes", float_of_int (List.length t.nodes));
      ("fleet_up", float_of_int up);
      ("fleet_unreachable", float_of_int (List.length t.nodes - up));
      ("fleet_requests_total", float_of_int req_sum);
      ("fleet_node_skew", skew);
      ("fleet_nodes_firing", float_of_int firing_nodes);
    ]
  @ (if Float.is_nan p99 then [] else [ ("fleet_decision_p99_ns", p99) ])

let scrape t ~at =
  t.last_at <- at;
  t.scrapes <- t.scrapes + 1;
  List.iter
    (fun ns ->
      match ns.fetch () with
      | Ok r ->
        ns.report <- Some r;
        ns.node_id <- r.node;
        ns.last_seen <- at;
        ns.last_ok <- true;
        ns.last_error <- None;
        let total = requests_total r.snapshot in
        (match ns.prev_sample with
        | Some (t0, c0) when at > t0 ->
          ns.rate <- float_of_int (total - c0) /. (at -. t0)
        | Some _ | None -> ());
        ns.prev_sample <- Some (at, total)
      | Error msg ->
        ns.last_ok <- false;
        ns.failures <- ns.failures + 1;
        ns.last_error <- Some msg)
    t.nodes;
  t.merged_snapshot <-
    Snapshot.merge
      (List.map (fun (ns, r) -> (ns.node_id, r.snapshot)) (fresh_reports t));
  let signals = compute_signals t in
  t.last_signals <- signals;
  (match t.fleet_health with
  | None -> ()
  | Some h -> Health.observe h ~at signals);
  match t.fleet_alerts with
  | None -> ()
  | Some a -> Alerts.observe a ~at signals

let merged t = t.merged_snapshot
let signals t = t.last_signals

(* Every per-node series carries a [node] label; fleet meta-series
   (reachability, scrape count) ride alongside so the federated
   exposition is self-describing. The node labels keep every key
   distinct, so this is a plain sorted union — deliberately not
   {!Snapshot.merge}, whose gauge fallback would re-stamp the
   meta-series' own node labels. *)
let federated t =
  let per_node =
    List.filter_map
      (fun ns ->
        match ns.report with
        | Some r when fresh t ns ->
          Some (ns.node_id, Snapshot.relabel ~node:ns.node_id r.snapshot)
        | _ -> None)
      t.nodes
  in
  let meta =
    { Snapshot.name = "mitos_fleet_scrapes_total";
      labels = [];
      help = "fleet scrape rounds completed";
      value = Snapshot.Counter t.scrapes }
    :: List.map
         (fun ns ->
           { Snapshot.name = "mitos_fleet_node_up";
             labels = [ ("node", ns.node_id) ];
             help = "1 when the node's last scrape attempt succeeded";
             value = Snapshot.Gauge (if ns.last_ok then 1.0 else 0.0) })
         t.nodes
  in
  (* one gauge row per (node, firing alert): value is the severity
     rank (1 ticket / 2 page) so a flat max over the series is the
     fleet's worst severity *)
  let alert_meta =
    List.concat_map
      (fun ns ->
        match ns.report with
        | Some r when fresh t ns ->
          List.map
            (fun (alert, sev) ->
              { Snapshot.name = "mitos_fleet_alert_firing";
                labels = [ ("alert", alert); ("node", ns.node_id) ];
                help = "burn-rate alert firing on the node (severity rank)";
                value =
                  Snapshot.Gauge
                    (match sev with Alerts.Ticket -> 1.0 | Alerts.Page -> 2.0) })
            (parse_firing r.health)
        | _ -> [])
      t.nodes
  in
  Snapshot.sort_rows (meta @ alert_meta @ List.concat_map snd per_node)

(* -- verdict ------------------------------------------------------------ *)

type node_view = {
  name : string;
  node_id : string;
  up : bool;
  node_healthy : bool;
  last_seen : float;
  stale : bool;
  failures : int;
  last_error : string option;
  node_requests_total : int;
  request_rate : float;
  decide_p99_ns : float;
  occupancy : float;
  node_firing : (string * Alerts.severity) list;
}

let view t ns =
  let up = ns.last_ok in
  let node_healthy =
    match ns.report with Some r -> r.healthy | None -> false
  in
  let snapshot_field f default =
    match ns.report with Some r -> f r.snapshot | None -> default
  in
  {
    name = ns.ns_name;
    node_id = ns.node_id;
    up;
    node_healthy;
    last_seen = ns.last_seen;
    stale = (not (Float.is_nan ns.last_seen)) && not (fresh t ns);
    failures = ns.failures;
    last_error = ns.last_error;
    node_requests_total = snapshot_field requests_total 0;
    request_rate = ns.rate;
    decide_p99_ns =
      snapshot_field
        (hist_quantile ~name:"mitos_net_request_ns" ~label:("op", "decide")
           0.99)
        nan;
    occupancy =
      snapshot_field
        (fun rows ->
          match gauge_sum "mitos_shadow_shard_occupancy" rows with
          | Some v -> v
          | None -> nan)
        nan;
    node_firing =
      (match ns.report with Some r -> parse_firing r.health | None -> []);
  }

let nodes t = List.map (view t) t.nodes

(* The worst verdict wins: an unreachable or stale node, a node whose
   own SLO is in breach, or a breached fleet-level rule each force
   503; the status line names the first offender. *)
(* Worst firing alert of a node: highest severity, first in reported
   order among those. *)
let worst_firing = function
  | [] -> None
  | (name, sev) :: rest ->
    Some
      (List.fold_left
         (fun (bn, bs) (n, s) ->
           if Alerts.worse s bs = s && s <> bs then (n, s) else (bn, bs))
         (name, sev) rest)

let offenders t =
  List.filter_map
    (fun ns ->
      let v = view t ns in
      if not v.up then
        Some (v.node_id, if v.stale then "stale" else "unreachable")
      else if not v.node_healthy then
        match worst_firing v.node_firing with
        | Some (alert, _) -> Some (v.node_id, "alert " ^ alert)
        | None -> Some (v.node_id, "breach")
      else None)
    t.nodes

let healthy t =
  offenders t = []
  && (match t.fleet_health with None -> true | Some h -> Health.healthy h)
  && match t.fleet_alerts with
     | None -> true
     | Some a -> not (Alerts.any_firing a)

let status_code t = if healthy t then 200 else 503

let render_health t =
  let buf = Buffer.create 512 in
  (match offenders t with
  | (node, why) :: _ -> (
    Buffer.add_string buf
      (Printf.sprintf "status: breach (node %s %s)\n" node why))
  | [] -> (
    match t.fleet_health with
    | Some h when not (Health.healthy h) -> (
      match Health.current_breaches h with
      | (r, _) :: _ ->
        Buffer.add_string buf
          (Printf.sprintf "status: breach (fleet rule %s)\n"
             (Health.rule_to_string r))
      | [] -> Buffer.add_string buf "status: breach\n")
    | Some _ | None -> (
      match t.fleet_alerts with
      | Some a when Alerts.any_firing a -> (
        match Alerts.firing a with
        | (r, _) :: _ ->
          Buffer.add_string buf
            (Printf.sprintf "status: breach (fleet alert %s)\n"
               r.Alerts.alert_name)
        | [] -> Buffer.add_string buf "status: breach\n")
      | Some _ | None -> Buffer.add_string buf "status: ok\n")));
  List.iter
    (fun ns ->
      let v = view t ns in
      let verdict =
        if not v.up then
          Printf.sprintf "%s%s"
            (if v.stale then "STALE" else "UNREACHABLE")
            (match v.last_error with
            | Some msg -> Printf.sprintf " (%s)" msg
            | None -> "")
        else if v.node_healthy then "ok"
        else "BREACH"
      in
      Buffer.add_string buf
        (Printf.sprintf "node %s  %s  last_seen %s  requests %d\n" v.node_id
           verdict
           (Registry.fmt_value v.last_seen)
           v.node_requests_total);
      List.iter
        (fun (alert, sev) ->
          Buffer.add_string buf
            (Printf.sprintf "  firing: %s severity=%s node=%s\n" alert
               (Alerts.severity_to_string sev)
               v.node_id))
        v.node_firing)
    t.nodes;
  (match t.fleet_health with
  | None -> ()
  | Some h ->
    Buffer.add_string buf "fleet rules:\n";
    Buffer.add_string buf (Health.render h));
  (match t.fleet_alerts with
  | None -> ()
  | Some a ->
    Buffer.add_string buf "fleet alerts:\n";
    let lines = Alerts.render_firing a in
    Buffer.add_string buf
      (if lines = "" then "(none firing)\n" else lines));
  Buffer.contents buf

(* -- /fleet.json -------------------------------------------------------- *)

let json_opt_num v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "null"
  else Registry.fmt_value v

let node_json t ns =
  let v = view t ns in
  let fields =
    [
      Printf.sprintf "\"decide_p99_ns\":%s" (json_opt_num v.decide_p99_ns);
      Printf.sprintf "\"failures\":%d" v.failures;
      Printf.sprintf "\"firing\":[%s]"
        (String.concat ","
           (List.map
              (fun (alert, sev) ->
                Printf.sprintf "{\"alert\":%s,\"severity\":%s}"
                  (Registry.json_string alert)
                  (Registry.json_string (Alerts.severity_to_string sev)))
              v.node_firing));
      Printf.sprintf "\"healthy\":%b" v.node_healthy;
      Printf.sprintf "\"last_error\":%s"
        (match v.last_error with
        | None -> "null"
        | Some msg -> Registry.json_string msg);
      Printf.sprintf "\"last_seen\":%s" (json_opt_num v.last_seen);
      Printf.sprintf "\"node\":%s" (Registry.json_string v.node_id);
      Printf.sprintf "\"occupancy\":%s" (json_opt_num v.occupancy);
      Printf.sprintf "\"request_rate\":%s" (json_opt_num v.request_rate);
      Printf.sprintf "\"requests_total\":%d" v.node_requests_total;
      Printf.sprintf "\"snapshot\":%s"
        (match ns.report with
        | Some r -> Snapshot.to_json r.snapshot
        | None -> "null");
      Printf.sprintf "\"stale\":%b" v.stale;
      Printf.sprintf "\"up\":%b" v.up;
    ]
  in
  "{" ^ String.concat "," fields ^ "}"

(* Keys sorted at every level; numbers through the canonical
   formatter; node array in configured order. Under mem:// transports
   and caller-supplied scrape times this is byte-deterministic. *)
let fleet_json t =
  Printf.sprintf
    "{\"alerts\":%s,\"healthy\":%b,\"merged\":%s,\"nodes\":[%s],\
     \"scrapes\":%d,\"signals\":{%s},\"stale_after\":%s}"
    (match t.fleet_alerts with
    | None -> "null"
    | Some a -> Alerts.to_json a)
    (healthy t)
    (Snapshot.to_json t.merged_snapshot)
    (String.concat "," (List.map (node_json t) t.nodes))
    t.scrapes
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf "%s:%s" (Registry.json_string k) (json_opt_num v))
          (List.sort (fun (a, _) (b, _) -> String.compare a b) t.last_signals)))
    (Registry.fmt_value t.stale_after)

(* -- exposition --------------------------------------------------------- *)

let routes t =
  [
    Server.route ~file:"metrics.prom"
      ~describe:"federated Prometheus exposition (node-labelled)" "/metrics"
      (fun () -> Server.prometheus (Snapshot.to_prometheus (federated t)));
    Server.route ~file:"fleet.json"
      ~describe:"per-node rollup + merged fleet snapshot" "/fleet.json"
      (fun () -> Server.json (fleet_json t));
    Server.route ~file:"healthz.txt"
      ~describe:"worst-of-fleet SLO verdict" "/healthz" (fun () ->
        Server.text ~status:(status_code t) (render_health t));
  ]
  @ (match t.fleet_alerts with None -> [] | Some a -> Alerts.routes a)
