module Timeseries = Mitos_util.Timeseries

type cmp = Le | Lt | Ge | Gt

type rule = {
  rule_name : string;
  signal : string;
  cmp : cmp;
  bound : float;
}

let rule ?name ~signal ~cmp ~bound () =
  let rule_name = match name with Some n -> n | None -> signal in
  { rule_name; signal; cmp; bound }

let cmp_to_string = function
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"

let rule_to_string r =
  let prefix = if r.rule_name = r.signal then "" else r.rule_name ^ ":" in
  Printf.sprintf "%s%s%s%s" prefix r.signal (cmp_to_string r.cmp)
    (Registry.fmt_value r.bound)

let parse_rule s =
  let find_op () =
    (* two-char operators first so "<=" does not parse as "<" *)
    let ops = [ ("<=", Le); (">=", Ge); ("<", Lt); (">", Gt) ] in
    let rec at i =
      if i >= String.length s then None
      else
        match
          List.find_opt
            (fun (op, _) ->
              i + String.length op <= String.length s
              && String.sub s i (String.length op) = op)
            ops
        with
        | Some (op, cmp) -> Some (i, op, cmp)
        | None -> at (i + 1)
    in
    at 0
  in
  match find_op () with
  | None -> Error (Printf.sprintf "no comparison in SLO rule %S" s)
  | Some (i, op, cmp) -> (
    let lhs = String.sub s 0 i in
    let rhs =
      String.sub s (i + String.length op)
        (String.length s - i - String.length op)
    in
    let name, signal =
      match String.index_opt lhs ':' with
      | Some colon ->
        ( Some (String.sub lhs 0 colon),
          String.sub lhs (colon + 1) (String.length lhs - colon - 1) )
      | None -> (None, lhs)
    in
    let signal = String.trim signal in
    if signal = "" then Error (Printf.sprintf "no signal in SLO rule %S" s)
    else
      match float_of_string_opt (String.trim rhs) with
      | None -> Error (Printf.sprintf "bad bound in SLO rule %S" s)
      | Some bound -> Ok (rule ?name ~signal ~cmp ~bound ()))

type breach = { breach_rule : rule; value : float; at : float }

(* Per-rule evaluation state: [violated] tracks the transition edge so
   a sustained breach is recorded once, not once per sample. *)
type rule_state = { r : rule; mutable violated : bool }

type t = {
  window : float;
  capacity : int option;  (* per-signal Timeseries retention *)
  max_age : float option;
  states : rule_state list;
  series : (string, Timeseries.t) Hashtbl.t;
  mutable order : string list;  (* first-observation order, reversed *)
  mutable rev_breaches : breach list;
  mutable observations : int;
  mutable tracer : Tracer.t option;
}

let create ?(window = 0.0) ?capacity ?max_age ~rules () =
  if window < 0.0 then invalid_arg "Health.create: negative window";
  {
    window;
    capacity;
    max_age;
    states = List.map (fun r -> { r; violated = false }) rules;
    series = Hashtbl.create 8;
    order = [];
    rev_breaches = [];
    observations = 0;
    tracer = None;
  }

let rules t = List.map (fun s -> s.r) t.states
let link_tracer t tracer = t.tracer <- Some tracer

let series_of t name =
  match Hashtbl.find_opt t.series name with
  | Some ts -> ts
  | None ->
    let ts =
      Timeseries.create ~name ?capacity:t.capacity ?max_age:t.max_age ()
    in
    Hashtbl.add t.series name ts;
    t.order <- name :: t.order;
    ts

let holds cmp value bound =
  match cmp with
  | Le -> value <= bound
  | Lt -> value < bound
  | Ge -> value >= bound
  | Gt -> value > bound

(* The value a rule judges right now: latest sample, or the trailing
   window mean. [None] while the signal has no samples. *)
let judged_value t (r : rule) =
  match Hashtbl.find_opt t.series r.signal with
  | None -> None
  | Some ts -> (
    match Timeseries.last ts with
    | None -> None
    | Some (last_time, last_value) ->
      if t.window = 0.0 then Some last_value
      else Some (Timeseries.window_mean ts ~from_time:(last_time -. t.window)))

let observe t ~at signals =
  List.iter (fun (name, value) -> Timeseries.add (series_of t name) at value) signals;
  t.observations <- t.observations + 1;
  List.iter
    (fun st ->
      match judged_value t st.r with
      | None -> ()
      | Some value ->
        let ok = holds st.r.cmp value st.r.bound in
        if (not ok) && not st.violated then begin
          t.rev_breaches <-
            { breach_rule = st.r; value; at } :: t.rev_breaches;
          match t.tracer with
          | None -> ()
          | Some tracer ->
            Tracer.instant tracer "slo_breach"
              ~args:
                [
                  ("rule", rule_to_string st.r);
                  ("value", Registry.fmt_value value);
                ]
        end;
        st.violated <- not ok)
    t.states

let signals t =
  List.rev_map (fun name -> (name, Hashtbl.find t.series name)) t.order

let current_breaches t =
  List.filter_map
    (fun st ->
      if st.violated then
        match judged_value t st.r with
        | Some v -> Some (st.r, v)
        | None -> None
      else None)
    t.states

let breaches t = List.rev t.rev_breaches
let healthy t = List.for_all (fun st -> not st.violated) t.states
let status_code t = if healthy t then 200 else 503

(* The "breaching: NAME" lines right after the verdict: a watch
   failure is attributable from the probe body alone, without parsing
   the per-rule detail below. *)
let breaching_lines t =
  String.concat ""
    (List.map
       (fun (r, _) -> Printf.sprintf "breaching: %s\n" r.rule_name)
       (current_breaches t))

let render_detail t =
  let buf = Buffer.create 256 in
  List.iter
    (fun st ->
      let line =
        match judged_value t st.r with
        | None ->
          Printf.sprintf "rule %s  pending (no samples)\n"
            (rule_to_string st.r)
        | Some v ->
          Printf.sprintf "rule %s  value %s  %s\n" (rule_to_string st.r)
            (Registry.fmt_value v)
            (if st.violated then "BREACH" else "ok")
      in
      Buffer.add_string buf line)
    t.states;
  Buffer.add_string buf
    (Printf.sprintf "observations: %d\nbreaches_total: %d\n" t.observations
       (List.length t.rev_breaches));
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "breach at %s: %s (value %s)\n"
           (Registry.fmt_value b.at)
           (rule_to_string b.breach_rule)
           (Registry.fmt_value b.value)))
    (breaches t);
  Buffer.contents buf

let render t =
  (if healthy t then "status: ok\n" else "status: breach\n")
  ^ breaching_lines t ^ render_detail t

let to_json t =
  let str = Registry.json_string in
  let num v =
    if Float.is_nan v || v = infinity || v = neg_infinity then
      str (Registry.fmt_value v)
    else Registry.fmt_value v
  in
  let rule_json st =
    let value_field =
      match judged_value t st.r with
      | None -> "\"value\":null"
      | Some v -> Printf.sprintf "\"value\":%s" (num v)
    in
    Printf.sprintf "{\"rule\":%s,%s,\"ok\":%b}"
      (str (rule_to_string st.r))
      value_field (not st.violated)
  in
  let breach_json b =
    Printf.sprintf "{\"at\":%s,\"rule\":%s,\"value\":%s}" (num b.at)
      (str (rule_to_string b.breach_rule))
      (num b.value)
  in
  Printf.sprintf
    "{\"healthy\":%b,\"observations\":%d,\"rules\":[%s],\"breaches\":[%s]}"
    (healthy t) t.observations
    (String.concat "," (List.map rule_json t.states))
    (String.concat "," (List.map breach_json (breaches t)))
