module Timeseries = Mitos_util.Timeseries

type t = {
  capacity : int;
  max_age : float;
  series : (string, Timeseries.t) Hashtbl.t;
  mutable order : string list;  (* first-observation order, reversed *)
  mutable observations : int;
  mutable last_at : float;  (* nan before the first sample *)
}

let default_capacity = 8192

let create ?(capacity = default_capacity) ?(max_age = infinity) () =
  if capacity < 1 then invalid_arg "Tsdb.create: non-positive capacity";
  if not (max_age > 0.0) then invalid_arg "Tsdb.create: non-positive max_age";
  {
    capacity;
    max_age;
    series = Hashtbl.create 16;
    order = [];
    observations = 0;
    last_at = nan;
  }

let capacity t = t.capacity
let max_age t = t.max_age
let observations t = t.observations
let last_at t = t.last_at

let series_of t name =
  match Hashtbl.find_opt t.series name with
  | Some ts -> ts
  | None ->
    let ts =
      Timeseries.create ~name ~capacity:t.capacity ~max_age:t.max_age ()
    in
    Hashtbl.add t.series name ts;
    t.order <- name :: t.order;
    ts

(* The monotone-time contract every derived series rests on: a sample
   stamped earlier than the store has already seen is clamped forward
   to the newest time, so retained times are non-decreasing even when
   a caller misbehaves. *)
let clamp t at =
  let at =
    if Float.is_nan t.last_at || at >= t.last_at then at else t.last_at
  in
  t.last_at <- at;
  at

let add t name ~at value =
  let at = clamp t at in
  Timeseries.add (series_of t name) at value

let observe t ~at signals =
  List.iter (fun (name, value) -> add t name ~at value) signals;
  t.observations <- t.observations + 1

let series t name = Hashtbl.find_opt t.series name
let names t = List.rev t.order

let latest t name = Option.bind (series t name) Timeseries.last

(* -- windowed folds ----------------------------------------------------- *)

let window_fold t name ~at ~window ~init ~f =
  match series t name with
  | None -> init
  | Some ts ->
    let from = at -. window in
    let acc = ref init in
    for i = Timeseries.first_at_or_after ts from to Timeseries.length ts - 1 do
      let time, v = Timeseries.get ts i in
      if time <= at then acc := f !acc time v
    done;
    !acc

let window_count t name ~at ~window =
  window_fold t name ~at ~window ~init:0 ~f:(fun n _ _ -> n + 1)

let window_mean t name ~at ~window =
  let sum, n =
    window_fold t name ~at ~window ~init:(0.0, 0)
      ~f:(fun (s, n) _ v -> (s +. v, n + 1))
  in
  if n = 0 then 0.0 else sum /. float_of_int n

(* Counter semantics with reset handling: a sample below its
   predecessor is a restart, contributing its absolute value — so the
   increase is a sum of non-negative deltas and can never go
   negative. *)
let increase t name ~at ~window =
  let _, inc =
    window_fold t name ~at ~window ~init:(None, 0.0)
      ~f:(fun (prev, acc) _ v ->
        let delta =
          match prev with
          | None -> 0.0
          | Some p -> if v >= p then v -. p else v
        in
        (Some v, acc +. delta))
  in
  inc

let rate t name ~at ~window =
  let span =
    let first, last =
      window_fold t name ~at ~window ~init:(nan, nan)
        ~f:(fun (first, _) time _ ->
          ((if Float.is_nan first then time else first), time))
    in
    last -. first
  in
  if Float.is_nan span || span <= 0.0 then 0.0
  else increase t name ~at ~window /. span

(* Nearest-rank quantile over the values in the window: sort the
   retained window values (total order, [compare : float]) and take
   the [ceil (q * n)]-th, clamped — deterministic for any stream. *)
let window_quantile t name ~at ~window q =
  let values =
    window_fold t name ~at ~window ~init:[] ~f:(fun acc _ v -> v :: acc)
  in
  match values with
  | [] -> nan
  | _ ->
    let arr = Array.of_list values in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) rank))

(* -- range queries (/query) --------------------------------------------- *)

let query t name ~from ~step =
  match series t name with
  | None -> [||]
  | Some ts ->
    let i0 = Timeseries.first_at_or_after ts from in
    let len = Timeseries.length ts in
    if step <= 0.0 then
      Array.init (len - i0) (fun i -> Timeseries.get ts (i0 + i))
    else begin
      (* per-bucket means at bucket-end times, empty buckets skipped *)
      let out = ref [] in
      let bucket = ref min_int and sum = ref 0.0 and n = ref 0 in
      let flush () =
        if !n > 0 then
          out :=
            ( from +. (float_of_int (!bucket + 1) *. step),
              !sum /. float_of_int !n )
            :: !out
      in
      for i = i0 to len - 1 do
        let time, v = Timeseries.get ts i in
        let b = int_of_float (Float.floor ((time -. from) /. step)) in
        if b <> !bucket then begin
          flush ();
          bucket := b;
          sum := 0.0;
          n := 0
        end;
        sum := !sum +. v;
        incr n
      done;
      flush ();
      Array.of_list (List.rev !out)
    end

let json_num v =
  if Float.is_nan v || v = infinity || v = neg_infinity then
    Registry.json_string (Registry.fmt_value v)
  else Registry.fmt_value v

let query_json t name ~from ~step =
  let samples = query t name ~from ~step in
  let sample (time, v) =
    Printf.sprintf "[%s,%s]" (json_num time) (json_num v)
  in
  Printf.sprintf
    "{\"from\":%s,\"samples\":[%s],\"signal\":%s,\"step\":%s}"
    (json_num from)
    (String.concat "," (Array.to_list (Array.map sample samples)))
    (Registry.json_string name)
    (json_num step)
