(** Multi-window multi-burn-rate SLO alerting (the Google-SRE shape)
    over the retained samples of a {!Tsdb}.

    Where {!Health} judges the latest sample (or one window mean)
    against a static bound — so a slow p99 bleed and a ten-second
    spike look identical — an alert rule here names a signal, an
    {e objective} (the per-sample good/bad test, in the Health
    comparison grammar), an {e error budget} (the tolerated bad-sample
    fraction), and a list of {e (fast, slow) window pairs} each with a
    burn-rate threshold and severity. The burn rate of a window is the
    window's bad-sample fraction divided by the budget; a pair is
    active when {e both} its windows clear the threshold (the fast
    window makes the alert responsive, the slow window makes it hold
    evidence). Severity [Page] outranks [Ticket].

    {b Lifecycle.} Alert state is an explicit machine:
    [Pending] (condition active, waiting out [for_]) →
    [Firing] (held through condition flaps for [keep_firing] after the
    last bad evaluation) → resolved back to [Inactive]. Every
    transition is recorded in a keep-newest incident ring (exported as
    [/alertz] JSONL) and, when a tracer is linked, as a Chrome-trace
    instant ([alert_pending]/[alert_firing]/[alert_resolved]/
    [alert_cancelled]) cross-linked with the run's spans.

    {b Determinism.} Evaluation is a pure function of the observed
    [(at, value)] stream — no wall clock, no randomness — so the
    [/alerts] JSON and incident JSONL are byte-identical for the same
    stream regardless of [--jobs] (DESIGN §15). *)

type severity = Ticket | Page

val severity_to_string : severity -> string
val severity_of_string : string -> (severity, string) result
val worse : severity -> severity -> severity
(** [Page] beats [Ticket]. *)

type window_pair = {
  fast : float;
  slow : float;
  burn : float;  (** burn-rate threshold both windows must clear *)
  pair_severity : severity;
}

type rule = {
  alert_name : string;
  signal : string;
  cmp : Health.cmp;
  objective : float;  (** a sample is good when [value cmp objective] *)
  budget : float;  (** tolerated bad-sample fraction, e.g. 0.01 *)
  windows : window_pair list;
  for_ : float;  (** condition must hold this long before firing *)
  keep_firing : float;  (** quiet spell required before resolving *)
}

val default_windows : window_pair list
(** The classic SRE pairs in observation-clock units: [60/300\@14.4]
    paging and [300/3600\@6] ticketing. *)

val rule :
  ?name:string -> ?budget:float -> ?windows:window_pair list ->
  ?for_:float -> ?keep_firing:float -> signal:string -> cmp:Health.cmp ->
  objective:float -> unit -> rule
(** [name] defaults to [signal]; [budget] to 0.01; [windows] to
    {!default_windows}; [for_]/[keep_firing] to 0. Raises
    [Invalid_argument] on a non-positive budget or burn threshold, an
    empty or inverted window pair, or negative durations. *)

val rule_to_string : rule -> string
(** Canonical [--burn-slo] spelling (all options explicit) —
    parseable by {!parse_rule}. *)

val objective_to_string : rule -> string
(** Just [SIGNAL<=OBJECTIVE]. *)

val parse_rule : string -> (rule, string) result
(** Grammar (one rule per [--burn-slo] flag):
    {[ [NAME:]SIGNAL(<=|<|>=|>)OBJECTIVE[;budget=B]
       [;windows=FAST/SLOW@BURN[@page|ticket],...][;for=D][;keep=K] ]}
    e.g. [p99:decision_p99_ns<=5e6;budget=0.05;windows=30/120@4@page;for=10;keep=30].
    Omitted options take the {!rule} defaults; a window pair without a
    severity pages. *)

(** {1 The engine} *)

type phase =
  | Inactive
  | Pending of { since : float; severity : severity }
  | Firing of { since : float; last_bad : float; severity : severity }

type transition = To_pending | To_firing | To_resolved | To_cancelled

val transition_to_string : transition -> string
(** [pending]/[firing]/[resolved]/[cancelled]. *)

type incident = {
  seq : int;  (** monotone across the run, survives ring eviction *)
  at : float;
  alert : string;
  transition : transition;
  severity : severity;
  value : float;  (** latest sample of the signal; [nan] if none *)
  burn_fast : float;  (** of the worst active pair at transition time *)
  burn_slow : float;
}

type t

val create : ?capacity:int -> ?tsdb:Tsdb.t -> rules:rule list -> unit -> t
(** [capacity] bounds the incident ring (default 1024, keep-newest).
    [tsdb] shares an existing store (e.g. the one the server's tick
    already feeds); a private default-retention store is created
    otherwise. Raises [Invalid_argument] on a non-positive
    capacity. *)

val tsdb : t -> Tsdb.t
val rules : t -> rule list
val phase_of : t -> string -> phase option
(** Current phase of the named alert. *)

val link_tracer : t -> Tracer.t -> unit
(** Subsequent transitions additionally emit tracer instants. *)

val observe : t -> at:float -> (string * float) list -> unit
(** Feed one snapshot of signals into the store, then {!eval}. *)

val eval : t -> at:float -> unit
(** Re-evaluate every rule at time [at] (non-decreasing across calls)
    against the store's retained samples — for callers that feed the
    {!tsdb} directly (e.g. to add derived signals) before judging. *)

val evals : t -> int

(** {1 Verdicts} *)

val firing : t -> (rule * severity) list
(** Currently firing alerts, in rule order. *)

val any_firing : t -> bool
val worst_severity : t -> severity option
val severity_code : t -> int
(** 0 none firing / 1 worst is [Ticket] / 2 worst is [Page] — what
    [mitos-cli watch --burn-slo] exits with. *)

val render_firing : t -> string
(** One [firing: NAME severity=SEV] line per firing alert — appended
    to /healthz bodies so watch failures are attributable from the
    probe alone (and parsed back by {!Fleet} for node attribution). *)

(** {1 History and exposition} *)

val incidents : t -> incident list
(** Retained transitions, oldest first (the ring keeps the newest
    [capacity]). *)

val incidents_total : t -> int
val dropped : t -> int

val incidents_to_jsonl : t -> string
(** One canonical JSON object per line, oldest first — the [/alertz]
    body and the CI incident artifact. *)

val to_json : t -> string
(** The [/alerts] body: alert states (with burns, severities, window
    configs), the firing list, the incident ring, and the worst
    severity. Keys sorted at every level; byte-deterministic for a
    deterministic stream. *)

val routes : t -> Server.route list
(** [/alerts] (JSON state + history), [/query?signal=&from=&step=]
    (range query over the store; 400/404 with the known signal list on
    a missing/unknown signal), [/alertz] (incident JSONL) — servable
    by {!Server.start} or {!Server.oneshot}. *)
