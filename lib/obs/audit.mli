(** Decision flight recorder: a bounded, deterministic audit log of
    every propagation decision the pipeline makes.

    Spans and counters (PR 1) say {e how long} decisioning took;
    the audit log says {e what was decided and why} — per record: the
    flow kind, the candidate tags, each tag's Eq. (8) submarginals
    (the undertainting and overtainting parts whose sum's sign is the
    verdict), the pollution and provenance space the decision saw, and
    the provenance-list evictions that removed taint behind the
    policy's back. Offline analyzers (blame attribution, flow-graph
    export — see [Mitos_experiments]) join this log against ground
    truth to answer "which decision caused this over-/under-tainted
    byte?".

    The recorder follows the {!Obs.disabled} contract: {!null} is the
    shared disabled instance, every recording entry point is a no-op
    on it, and hot-path call sites guard with one [enabled] check (in
    practice one [Atomic] load of an installed probe — see
    [Mitos.Decision.set_audit]). Records are retained in a bounded
    keep-oldest ring (the retained prefix is deterministic); an
    optional sink additionally receives {e every} record as a JSONL
    line, bounded only by the consumer.

    This library knows nothing about tags: tag identities and
    locations are rendered to strings by the caller, so the recorder
    stays usable from [lib/core] upward without a dependency cycle.

    Determinism: records carry no wall-clock times — ids are a
    per-recorder sequence and steps/pcs come from the replayed trace —
    so the JSONL export is byte-identical across runs and [--jobs]
    degrees for a deterministic workload. *)

type verdict = Propagate | Block

type tag_decision = {
  tag : string;
  under : float;  (** undertainting submarginal, [-u_t n^-alpha] *)
  over : float;  (** overtainting submarginal, [tau beta (P/N_R)^(beta-1) o_t] *)
  marginal : float;  (** the value whose sign decided the verdict *)
  verdict : verdict;
}

type body =
  | Decision of {
      algorithm : string;  (** "alg1", "alg2", "alg2-fast", ... *)
      flow : string;  (** flow kind, as [Policy.flow_kind_to_string] *)
      space : int;  (** free provenance slots at the destination *)
      pollution : float;  (** weighted pollution P the decision saw *)
      tags : tag_decision list;
    }
  | Eviction of {
      at : string;  (** location, "mem:291" / "reg:5" *)
      victim : string;  (** tag removed from the provenance list *)
      incoming : string;  (** tag whose arrival forced the eviction *)
    }
  | Selection of {
      policy : string;
      flow : string;
      candidates : string list;
      chosen : string list;
    }
  | Note of string
      (** free-form marker (e.g. a litmus case boundary) *)

type record = { id : int; step : int; pc : int; body : body }

type t

val null : t
(** The disabled instance: {!enabled} is [false] and every recording
    entry point returns without work. *)

val create : ?capacity:int -> ?sink:(string -> unit) -> unit -> t
(** An enabled recorder. [capacity] bounds the in-memory ring (default
    65536 records, keep-oldest); [sink] receives every record as one
    JSON line (no trailing newline), including records the ring
    drops. Raises [Invalid_argument] on a non-positive capacity. *)

val enabled : t -> bool

val link_tracer : t -> Tracer.t -> unit
(** Cross-link into a span trace: every subsequent record additionally
    emits a tracer instant named ["audit"] carrying the record id and
    kind, so decisions are visible on the Chrome-trace timeline next
    to the spans they occurred under. *)

val set_context : t -> ?step:int -> ?pc:int -> ?flow:string -> unit -> unit
(** Ambient fields stamped onto subsequent {!record_decision} calls.
    The engine sets all three before consulting its policy; a policy
    used standalone sets [step] and [flow] from the request. Fields
    not passed keep their previous value ([-1] / [""] initially). *)

val record_decision :
  t ->
  algorithm:string ->
  space:int ->
  pollution:float ->
  tag_decision list ->
  unit
(** One Alg. 1/2 invocation: the ranked per-tag verdicts with their
    submarginals. Step, pc and flow come from {!set_context}. *)

val record_eviction :
  t -> ?step:int -> ?pc:int -> at:string -> victim:string -> incoming:string -> unit -> unit
(** A provenance-list eviction ([Provenance.Added_evicting] or the
    least-marginal strategy's explicit removal). *)

val record_selection :
  t ->
  ?step:int ->
  policy:string ->
  flow:string ->
  candidates:string list ->
  chosen:string list ->
  unit ->
  unit
(** A policy-level (request, selection) pair — the audit spine behind
    [Combinators.audited]. *)

val record_note : t -> string -> unit
(** A free-form marker record (analyzers use these to delimit
    per-case segments of a shared log). *)

val next_id : t -> int
(** The id the next record will receive (ids are assigned even to
    records the ring drops, so [next_id] delimits log segments). *)

val length : t -> int
(** Records retained in the ring. *)

val dropped : t -> int
(** Records dropped by the ring once full (still sent to the sink). *)

val records : t -> record array
(** Retained records, oldest first. *)

val record_to_json : record -> string
(** One record as a single-line JSON object with a fixed field order;
    numbers render via {!Registry.fmt_value} (non-finite values as
    strings), so output is byte-deterministic. *)

val to_jsonl : t -> string
(** Retained records, one JSON object per line. *)
