(** Run-level measurement: the quantities the paper's evaluation
    reports, extracted from a finished (or running) engine. *)

open Mitos_tag

type summary = {
  policy : string;
  steps : int;
  wall_seconds : float;  (** measured by {!measure_run} *)
  shadow_ops : int;  (** time-cost proxy (deterministic) *)
  footprint_bytes : int;  (** shadow-memory space (Table II "Space") *)
  tainted_bytes : int;
  total_copies : int;
  distinct_tags : int;
  ifp_propagated : int;
  ifp_blocked : int;
  dfp_propagated : int;
  ctrl_scopes : int;
  detected_bytes : int;
      (** bytes carrying both netflow and export-table tags — the
          paper's in-memory-attack detection metric (Table II) *)
  fairness : Mitos.Fairness.report;
}

val of_engine : ?wall_seconds:float -> Engine.t -> summary

val measure_run : ?max_steps:int -> Engine.t -> summary
(** [Engine.run] under a wall clock. *)

val detection_bytes : Shadow.t -> int
(** [Shadow.bytes_with_both shadow Network Export_table]. *)

val propagation_rate : summary -> float
(** Fraction of IFP candidates propagated; 1 if none were seen. *)

val header : string list
(** Column labels matching {!row}. *)

val row : summary -> string list
(** Render for {!Mitos_util.Table}. *)

val pp : Format.formatter -> summary -> unit

(** {1 Live timelines}

    Sampling of system-level quantities while the engine runs — the
    raw series behind "pollution is (mostly) increasing on time"
    (paper §V-B). *)

type timeline = {
  steps_series : Mitos_util.Timeseries.t;  (** x = machine step *)
  copies : Mitos_util.Timeseries.t;  (** total tag copies *)
  tainted : Mitos_util.Timeseries.t;  (** tainted memory bytes *)
  distinct : Mitos_util.Timeseries.t;  (** live distinct tags *)
}

(** One sampled observation of the run-level quantities. *)
type sample = {
  at_step : int;
  sampled_copies : int;
  sampled_tainted : int;
  sampled_distinct : int;
}

val attach_sampler :
  ?sample_every:int ->
  ?registry:Mitos_obs.Registry.t ->
  ?observe:(sample -> unit) ->
  Engine.t ->
  unit
(** The single sampling path behind every live consumer: one
    [on_record] hook fires every [sample_every] processed records
    (default 1024), publishes the sample to the registry's
    [mitos_run_*] gauges (when given) and to the [observe] callback.
    Attach before running; raises [Invalid_argument] when
    [sample_every < 1]. *)

val attach_timeline : ?sample_every:int -> Engine.t -> timeline
(** {!attach_sampler} feeding the four {!Mitos_util.Timeseries}
    series. Attach before running. *)
