open Mitos_tag

let take_space request tags =
  (* Propagating more tags than the destination has space for is
     allowed (the list evicts), but baseline policies historically cap
     at the available space; we keep everything and let the list's
     eviction policy act, matching FAROS's FIFO behaviour. *)
  ignore request;
  tags

let direct_all (request : Policy.request) =
  if Policy.is_indirect request.kind then [] else request.candidates

let faros = Policy.make ~name:"faros" ~select:direct_all

let propagate_all =
  Policy.make ~name:"propagate-all" ~select:(fun request ->
      take_space request request.candidates)

let block_all = Policy.make ~name:"block-all" ~select:(fun _ -> [])

let minos_width =
  Policy.make ~name:"minos-width" ~select:(fun request ->
      match request.kind with
      | Policy.Direct_copy | Policy.Direct_compute -> request.candidates
      | Policy.Addr -> if request.width <= 1 then request.candidates else []
      | Policy.Ctrl | Policy.Ijump -> [])

let probabilistic ~seed ~p =
  let rng = Mitos_util.Rng.create seed in
  Policy.make
    ~name:(Printf.sprintf "probabilistic-%.2f" p)
    ~select:(fun request ->
      if Policy.is_indirect request.kind then
        List.filter (fun _ -> Mitos_util.Rng.bernoulli rng p) request.candidates
      else request.candidates)

let pollution_threshold ~limit =
  Policy.make
    ~name:(Printf.sprintf "threshold-%d" limit)
    ~select:(fun request ->
      if Policy.is_indirect request.kind then
        if Tag_stats.total request.stats < limit then request.candidates
        else []
      else request.candidates)

type observation = {
  step : int;
  tag : Tag.t;
  kind : Policy.flow_kind;
  under : float;
  over : float;
  propagated : bool;
}

let mitos ?(name = "mitos") ?pollution_source ?observe ?(handle_direct = false)
    ?(recompute = true) params =
  (* one table-backed decision context per policy instance: policies
     are engine-local, so the fast path's pollution cache is never
     shared across domains *)
  let fast = Mitos.Decision.fast params in
  let pollution stats =
    match pollution_source with
    | Some f -> f stats
    | None -> Mitos.Cost.weighted_pollution params stats
  in
  let select (request : Policy.request) =
    if (not handle_direct) && not (Policy.is_indirect request.kind) then
      request.candidates
    else begin
      (* stamp the flow context onto the flight recorder even when the
         policy is exercised outside an engine (which stamps pc too) *)
      (match Mitos.Decision.audit () with
      | None -> ()
      | Some recorder ->
        Mitos_obs.Audit.set_context recorder ~step:request.step
          ~flow:(Policy.flow_kind_to_string request.kind) ());
      let env =
        {
          Mitos.Decision.count = Tag_stats.count request.stats;
          pollution = pollution request.stats;
        }
      in
      let ranked =
        if recompute then
          Mitos.Decision.alg2_fast fast env ~space:request.space
            request.candidates
        else
          Mitos.Decision.alg2_fast_no_recompute fast env ~space:request.space
            request.candidates
      in
      (match observe with
      | None -> ()
      | Some f ->
        List.iter
          (fun (r : Mitos.Decision.ranked) ->
            let under, over =
              Mitos.Decision.submarginals params env r.Mitos.Decision.tag
            in
            f
              {
                step = request.step;
                tag = r.Mitos.Decision.tag;
                kind = request.kind;
                under;
                over;
                propagated = r.Mitos.Decision.verdict = Mitos.Decision.Propagate;
              })
          ranked);
      List.filter_map
        (fun (r : Mitos.Decision.ranked) ->
          match r.Mitos.Decision.verdict with
          | Mitos.Decision.Propagate -> Some r.Mitos.Decision.tag
          | Mitos.Decision.Block -> None)
        ranked
    end
  in
  Policy.make ~name ~select

let mitos_adaptive ?(name = "mitos-adaptive") ?(update_period = 256)
    ?(handle_direct = false) controller =
  let decisions = ref 0 in
  let fast = ref (Mitos.Decision.fast (Mitos.Adaptive.params controller)) in
  (* the controller only moves tau, so the refresh reuses the
     undertainting table and just drops the pollution cache *)
  let fast_for params =
    if not (Mitos.Params.equal params (Mitos.Decision.fast_params !fast)) then
      fast := Mitos.Decision.fast_update !fast params;
    !fast
  in
  let select (request : Policy.request) =
    if (not handle_direct) && not (Policy.is_indirect request.kind) then
      request.candidates
    else begin
      (match Mitos.Decision.audit () with
      | None -> ()
      | Some recorder ->
        Mitos_obs.Audit.set_context recorder ~step:request.step
          ~flow:(Policy.flow_kind_to_string request.kind) ());
      let params = Mitos.Adaptive.params controller in
      incr decisions;
      if !decisions mod update_period = 0 then
        Mitos.Adaptive.observe controller
          ~pollution:(Mitos.Cost.weighted_pollution params request.stats);
      let params = Mitos.Adaptive.params controller in
      let env =
        {
          Mitos.Decision.count = Tag_stats.count request.stats;
          pollution = Mitos.Cost.weighted_pollution params request.stats;
        }
      in
      Mitos.Decision.alg2_fast_accepted (fast_for params) env
        ~space:request.space request.candidates
    end
  in
  Policy.make ~name ~select

let with_confluence_boost ?(factor = 25.0) ~pairs params =
  let boosted =
    (* precompute one boosted parameterization per watched pair *)
    List.map
      (fun (ty1, ty2) ->
        let p = Mitos.Params.with_u params ty1 (factor *. Mitos.Params.u params ty1) in
        let p = Mitos.Params.with_u p ty2 (factor *. Mitos.Params.u p ty2) in
        ((ty1, ty2), p))
      pairs
  in
  let select (request : Policy.request) =
    if not (Policy.is_indirect request.kind) then request.candidates
    else begin
      let has ty =
        List.exists
          (fun tag -> Tag_type.equal (Tag.ty tag) ty)
          request.candidates
      in
      let params =
        match
          List.find_opt (fun ((ty1, ty2), _) -> has ty1 && has ty2) boosted
        with
        | Some (_, p) -> p
        | None -> params
      in
      let env =
        {
          Mitos.Decision.count = Tag_stats.count request.stats;
          pollution = Mitos.Cost.weighted_pollution params request.stats;
        }
      in
      Mitos.Decision.alg2_accepted params env ~space:request.space
        request.candidates
    end
  in
  Policy.make ~name:"mitos-confluence" ~select
