open Mitos_tag
module Machine = Mitos_isa.Machine
module Extract = Mitos_flow.Extract
module Loc = Mitos_flow.Loc

type source_action =
  | Taint of Tag.t * [ `Replace | `Union ]
  | Clear
  | Copy_within of { src : int; extra : Tag.t option }
  | Restore of { key : int; extra : Tag.t option }

type config = {
  m_prov : int;
  eviction : Shadow.eviction_strategy;
  track_ctrl : bool;
  ijump_scope_len : int;
  route_direct_through_policy : bool;
  shadow_backend : Shadow.backend;
  shadow_shards : int option;
}

let default_config =
  {
    m_prov = 10;
    eviction = Shadow.Structural Provenance.Fifo;
    track_ctrl = true;
    ijump_scope_len = 32;
    route_direct_through_policy = false;
    shadow_backend = Shadow.Hashed;
    shadow_shards = None;
  }

type counters = {
  mutable steps : int;
  mutable direct_events : int;
  mutable indirect_events : int;
  mutable dfp_propagated : int;
  mutable ifp_propagated : int;
  mutable ifp_blocked : int;
  mutable ctrl_scopes_opened : int;
  mutable source_bytes : int;
  mutable sink_tainted_bytes : int;
  mutable shadow_ops : int;
  mutable evictions : int;
  per_type_propagated : int array;
  per_type_blocked : int array;
}

let fresh_counters () =
  {
    steps = 0;
    direct_events = 0;
    indirect_events = 0;
    dfp_propagated = 0;
    ifp_propagated = 0;
    ifp_blocked = 0;
    ctrl_scopes_opened = 0;
    source_bytes = 0;
    sink_tainted_bytes = 0;
    shadow_ops = 0;
    evictions = 0;
    per_type_propagated = Array.make Tag_type.count 0;
    per_type_blocked = Array.make Tag_type.count 0;
  }

(* A control-dependency scope: writes executed while the scope is
   open receive indirect flows from [tags]. [end_pc] is the branch's
   immediate post-dominator; [expires_at_step] bounds scopes whose
   static end is unknown (indirect jumps). *)
type scope = { tags : Tag.t list; end_pc : int; expires_at_step : int }

(* Resolved observability handles: built once in [instrument], so the
   hot path updates instruments directly instead of looking them up by
   name. [None] is the disabled path — a single pointer compare. *)
type instruments = {
  obs : Mitos_obs.Obs.t;
  record_latency : Mitos_obs.Histogram.t;
  records_total : Mitos_obs.Registry.counter;
  ifp_prop : Mitos_obs.Registry.counter array;  (* per Tag_type.to_int *)
  ifp_block : Mitos_obs.Registry.counter array;
  shadow_ops_gauge : Mitos_obs.Registry.gauge;
  scope_depth_gauge : Mitos_obs.Registry.gauge;
  evictions_total : Mitos_obs.Registry.counter;
}

type alert = {
  alert_addr : int;
  alert_step : int;
  alert_types : Tag_type.t * Tag_type.t;
}

type arrival = { arr_tag : Tag.t; arr_step : int; arr_via : string }

type t = {
  config : config;
  policy : Policy.t;
  source_tag : source:int -> source_action;
  extract : Extract.t;
  mutable machine : Machine.t option;
  mutable shadow : Shadow.t option;
  mutable scopes : scope list;
  counters : counters;
  mutable record_hooks : (Machine.exec_record -> unit) list;
  mutable watches : (Tag_type.t * Tag_type.t) list;
  alerted : (int * int, unit) Hashtbl.t; (* (addr, watch index) *)
  mutable rev_alerts : alert list;
  mutable current_step : int;
  mutable current_pc : int;
  site_profile : (int, int ref * int ref) Hashtbl.t; (* pc -> (prop, blocked) *)
  sink_stats : (int, Tag_stats.t) Hashtbl.t;
  snapshots : (int, Tag.t list array) Hashtbl.t;
  mutable history_on : bool;
  history : (int, arrival list ref) Hashtbl.t; (* newest first *)
  mutable instruments : instruments option;
  mutable audit : Mitos_obs.Audit.t option;
}

let create ?(config = default_config) ~policy ~source_tag prog =
  {
    config;
    policy;
    source_tag;
    extract = Extract.create prog;
    machine = None;
    shadow = None;
    scopes = [];
    counters = fresh_counters ();
    record_hooks = [];
    watches = [];
    alerted = Hashtbl.create 64;
    rev_alerts = [];
    current_step = 0;
    current_pc = 0;
    site_profile = Hashtbl.create 64;
    sink_stats = Hashtbl.create 8;
    snapshots = Hashtbl.create 8;
    history_on = false;
    history = Hashtbl.create 256;
    instruments = None;
    audit = None;
  }

(* Count every provenance-list eviction — taint removed behind the
   policy's back is the one cause of undertainting no decision record
   explains — and surface it into the flight recorder when auditing.
   The closure consults [t.audit]/[t.instruments] at event time, so
   installing it once at shadow-attach covers any instrument order. *)
let install_evict_observer t shadow =
  Shadow.on_evict shadow
    (Some
       (fun (e : Shadow.evict_event) ->
         t.counters.evictions <- t.counters.evictions + 1;
         (match t.instruments with
         | Some ins -> Mitos_obs.Registry.incr ins.evictions_total
         | None -> ());
         match t.audit with
         | None -> ()
         | Some recorder ->
           let at =
             match e.at with
             | `Mem addr -> "mem:" ^ string_of_int addr
             | `Reg r -> "reg:" ^ string_of_int r
           in
           Mitos_obs.Audit.record_eviction recorder ~step:t.current_step
             ~pc:t.current_pc ~at
             ~victim:(Tag.to_string e.victim)
             ~incoming:(Tag.to_string e.incoming)
             ()))

let attach_shadow t ~mem_size =
  let shadow =
    Shadow.create ~strategy:t.config.eviction ~backend:t.config.shadow_backend
      ?shards:t.config.shadow_shards ~mem_capacity:mem_size
      ~num_regs:Mitos_isa.Instr.num_regs ~m_prov:t.config.m_prov ()
  in
  t.shadow <- Some shadow;
  install_evict_observer t shadow

let attach_existing_shadow t shadow =
  if Shadow.m_prov shadow <> t.config.m_prov then
    invalid_arg "Engine.attach_existing_shadow: M_prov mismatch";
  t.shadow <- Some shadow;
  install_evict_observer t shadow

let attach t machine =
  attach_shadow t ~mem_size:(Machine.mem_size machine);
  t.machine <- Some machine

let the_shadow t =
  match t.shadow with
  | Some s -> s
  | None -> invalid_arg "Engine: no machine attached"

let shadow = the_shadow
let stats t = Shadow.stats (the_shadow t)
let counters t = t.counters
let policy t = t.policy
let config t = t.config
let active_scopes t = List.length t.scopes
let on_record t f = t.record_hooks <- f :: t.record_hooks

(* -- Observability -------------------------------------------------- *)

let instrument ?(sample_every = 1024) ?audit t obs =
  if sample_every < 1 then invalid_arg "Engine.instrument: sample_every";
  if t.instruments <> None then
    invalid_arg "Engine.instrument: engine already instrumented";
  (* The audit recorder rides the same entry point but is gated on its
     own enabled flag, not the obs context's — auditing a run without
     span tracing (and vice versa) are both valid. *)
  (match audit with
  | Some recorder when Mitos_obs.Audit.enabled recorder ->
    t.audit <- Some recorder;
    (* with a live trace too, cross-link records as instant events *)
    if Mitos_obs.Obs.enabled obs then
      Mitos_obs.Audit.link_tracer recorder (Mitos_obs.Obs.tracer obs)
  | Some _ | None -> ());
  if Mitos_obs.Obs.enabled obs then begin
    let module R = Mitos_obs.Registry in
    let registry = Mitos_obs.Obs.registry obs in
    let per_type verdict =
      Array.init Tag_type.count (fun i ->
          R.counter registry
            ~help:"IFP decisions, per candidate tag type and verdict"
            ~labels:
              [
                ("ty", Tag_type.to_string (Tag_type.of_int i));
                ("verdict", verdict);
              ]
            "mitos_engine_ifp_decisions_total")
    in
    let ins =
      {
        obs;
        record_latency =
          R.histogram registry
            ~help:"process_record latency in clock ticks"
            ~lo:1.0 ~growth:2.0 ~buckets:32
            "mitos_engine_record_latency_ticks";
        records_total =
          R.counter registry ~help:"execution records processed"
            "mitos_engine_records_total";
        ifp_prop = per_type "propagate";
        ifp_block = per_type "block";
        shadow_ops_gauge =
          R.gauge registry ~help:"provenance-list writes so far"
            "mitos_engine_shadow_ops";
        scope_depth_gauge =
          R.gauge registry ~help:"open control-dependency scopes"
            "mitos_engine_scope_depth";
        evictions_total =
          R.counter registry ~help:"provenance-list evictions"
            "mitos_engine_evictions_total";
      }
    in
    t.instruments <- Some ins;
    (* System-level gauges and a trace counter track, sampled every
       [sample_every] records through the ordinary hook mechanism. *)
    let tracer = Mitos_obs.Obs.tracer obs in
    let count = ref 0 in
    on_record t (fun _record ->
        incr count;
        if !count mod sample_every = 0 then begin
          let shadow_ops = float_of_int t.counters.shadow_ops in
          let scope_depth = float_of_int (List.length t.scopes) in
          R.set_gauge ins.shadow_ops_gauge shadow_ops;
          R.set_gauge ins.scope_depth_gauge scope_depth;
          Mitos_obs.Tracer.counter tracer "engine"
            [ ("shadow_ops", shadow_ops); ("scope_depth", scope_depth) ]
        end)
  end

(* -- Taint timelines ------------------------------------------------ *)

let record_history t = t.history_on <- true

let taint_history t addr =
  match Hashtbl.find_opt t.history addr with
  | Some arrivals -> List.rev !arrivals
  | None -> []

(* Log the tags in [tags] that were not already present at [addr]
   (genuine arrivals, not re-copies of resident taint). *)
let log_arrivals t ~before ~addr ~via tags =
  if t.history_on then
    List.iter
      (fun tag ->
        if not (List.exists (Tag.equal tag) before) then begin
          let cell =
            match Hashtbl.find_opt t.history addr with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.add t.history addr c;
              c
          in
          cell :=
            { arr_tag = tag; arr_step = t.current_step; arr_via = via }
            :: !cell
        end)
      tags

(* -- Confluence watching ------------------------------------------- *)

let watch_confluence t ty1 ty2 = t.watches <- t.watches @ [ (ty1, ty2) ]

let alerts t = List.rev t.rev_alerts

let first_alert_step t =
  match List.rev t.rev_alerts with
  | [] -> None
  | a :: _ -> Some a.alert_step

let check_confluence_addr t shadow addr =
  List.iteri
    (fun i ((ty1, ty2) as types) ->
      if
        (not (Hashtbl.mem t.alerted (addr, i)))
        && Shadow.addr_has_type shadow addr ty1
        && Shadow.addr_has_type shadow addr ty2
      then begin
        Hashtbl.add t.alerted (addr, i) ();
        t.rev_alerts <-
          { alert_addr = addr; alert_step = t.current_step; alert_types = types }
          :: t.rev_alerts
      end)
    t.watches

let check_confluence_loc t shadow = function
  | Loc.Reg _ -> ()
  | Loc.Mem addr -> if t.watches <> [] then check_confluence_addr t shadow addr

(* -- Tag gathering ------------------------------------------------- *)

let tags_of_loc shadow = function
  | Loc.Reg r -> Shadow.tags_of_reg shadow r
  | Loc.Mem a -> Shadow.tags_of_addr shadow a

(* Union of source tags, order-preserving (oldest list entries first),
   deduplicated. *)
let gather shadow srcs =
  let seen = ref Tag.Set.empty in
  List.concat_map (tags_of_loc shadow) srcs
  |> List.filter (fun tag ->
         if Tag.Set.mem tag !seen then false
         else begin
           seen := Tag.Set.add tag !seen;
           true
         end)

let space_of_loc shadow = function
  | Loc.Reg r -> Shadow.space_left_reg shadow r
  | Loc.Mem a -> Shadow.space_left_addr shadow a

(* Op accounting: one op per provenance entry removed or written.
   Untainted data flowing into untainted locations is free — real DIFT
   implementations (FAROS included) fast-path clean traffic, so this
   is the proxy that makes "time" comparable across policies. *)
let loc_cardinality shadow = function
  | Loc.Reg r -> List.length (Shadow.tags_of_reg shadow r)
  | Loc.Mem a -> List.length (Shadow.tags_of_addr shadow a)

let set_loc_tags t shadow ~via loc tags =
  let old_card = loc_cardinality shadow loc in
  t.counters.shadow_ops <- t.counters.shadow_ops + old_card + List.length tags;
  (match loc with
  | Loc.Reg r -> Shadow.set_reg_tags shadow r tags
  | Loc.Mem a ->
    if t.history_on then
      log_arrivals t ~before:(Shadow.tags_of_addr shadow a) ~addr:a ~via tags;
    Shadow.set_addr_tags shadow a tags);
  check_confluence_loc t shadow loc

let union_loc_tags t shadow ~via loc tags =
  if tags <> [] then begin
    t.counters.shadow_ops <- t.counters.shadow_ops + List.length tags;
    (match loc with
    | Loc.Reg r -> Shadow.union_into_reg shadow r tags
    | Loc.Mem a ->
      if t.history_on then
        log_arrivals t ~before:(Shadow.tags_of_addr shadow a) ~addr:a ~via
          tags;
      Shadow.union_into_addr shadow a tags);
    check_confluence_loc t shadow loc
  end

(* -- Policy consultation ------------------------------------------- *)

let consult t shadow ~kind ~candidates ~space ~width ~step =
  (match t.audit with
  | None -> ()
  | Some recorder ->
    (* stamp the flow context so Decision records emitted under this
       consultation carry the right step/pc/kind *)
    Mitos_obs.Audit.set_context recorder ~step ~pc:t.current_pc
      ~flow:(Policy.flow_kind_to_string kind) ());
  let request =
    {
      Policy.kind;
      candidates;
      space;
      width;
      stats = Shadow.stats shadow;
      step;
    }
  in
  Policy.select t.policy request

let site_cell t =
  match Hashtbl.find_opt t.site_profile t.current_pc with
  | Some cell -> cell
  | None ->
    let cell = (ref 0, ref 0) in
    Hashtbl.add t.site_profile t.current_pc cell;
    cell

let count_ifp t ~candidates ~chosen =
  let chosen_set = List.fold_left (fun s x -> Tag.Set.add x s) Tag.Set.empty chosen in
  let site_prop, site_block = site_cell t in
  List.iter
    (fun tag ->
      let ti = Tag_type.to_int (Tag.ty tag) in
      let propagated = Tag.Set.mem tag chosen_set in
      if propagated then begin
        t.counters.ifp_propagated <- t.counters.ifp_propagated + 1;
        incr site_prop;
        t.counters.per_type_propagated.(ti) <-
          t.counters.per_type_propagated.(ti) + 1
      end
      else begin
        t.counters.ifp_blocked <- t.counters.ifp_blocked + 1;
        incr site_block;
        t.counters.per_type_blocked.(ti) <- t.counters.per_type_blocked.(ti) + 1
      end;
      match t.instruments with
      | None -> ()
      | Some ins ->
        Mitos_obs.Registry.incr
          (if propagated then ins.ifp_prop.(ti) else ins.ifp_block.(ti)))
    candidates

let site_profile t =
  Hashtbl.fold
    (fun pc (prop, blocked) acc -> (pc, !prop, !blocked) :: acc)
    t.site_profile []
  |> List.sort (fun (_, p1, b1) (_, p2, b2) ->
         Int.compare (p2 + b2) (p1 + b1))

(* Apply an indirect flow of [candidates] into [dst]. *)
let apply_indirect t shadow ~kind ~width ~step candidates dst =
  if candidates <> [] then begin
    t.counters.indirect_events <- t.counters.indirect_events + 1;
    let space = space_of_loc shadow dst in
    let chosen = consult t shadow ~kind ~candidates ~space ~width ~step in
    count_ifp t ~candidates ~chosen;
    union_loc_tags t shadow ~via:(Policy.flow_kind_to_string kind) dst chosen
  end

(* Apply a direct flow: replace semantics. *)
let apply_direct t shadow ~kind ~width ~step srcs dsts =
  t.counters.direct_events <- t.counters.direct_events + 1;
  let tags = gather shadow srcs in
  let chosen =
    if t.config.route_direct_through_policy then begin
      (* Replace semantics frees the whole list first. *)
      let chosen =
        consult t shadow ~kind ~candidates:tags ~space:t.config.m_prov ~width
          ~step
      in
      count_ifp t ~candidates:tags ~chosen;
      chosen
    end
    else tags
  in
  t.counters.dfp_propagated <-
    t.counters.dfp_propagated + (List.length chosen * List.length dsts);
  let via = Policy.flow_kind_to_string kind in
  List.iter (fun dst -> set_loc_tags t shadow ~via dst chosen) dsts

let width_of_record (r : Machine.exec_record) =
  match (r.mem_read, r.mem_write) with
  | Some (_, len), _ | _, Some (_, len) -> len
  | None, None -> 0

(* -- Scope management ---------------------------------------------- *)

let pop_scopes t ~pc ~step =
  t.scopes <-
    List.filter
      (fun scope -> scope.end_pc <> pc && step < scope.expires_at_step)
      t.scopes

let push_scope t ~tags ~end_pc ~expires_at_step =
  if tags <> [] then begin
    t.counters.ctrl_scopes_opened <- t.counters.ctrl_scopes_opened + 1;
    t.scopes <- { tags; end_pc; expires_at_step } :: t.scopes
  end

let scope_tags t =
  match t.scopes with
  | [] -> []
  | scopes ->
    let seen = ref Tag.Set.empty in
    List.concat_map (fun s -> s.tags) scopes
    |> List.filter (fun tag ->
           if Tag.Set.mem tag !seen then false
           else begin
             seen := Tag.Set.add tag !seen;
             true
           end)

(* Program-level writes of a record (registers + memory, excluding
   syscall effects, which carry their own taint semantics). *)
let program_writes (r : Machine.exec_record) =
  let regs =
    match r.reg_write with Some (reg, _) -> [ Loc.Reg reg ] | None -> []
  in
  let mems =
    match r.mem_write with
    | Some (addr, len) -> Loc.mem_range addr len
    | None -> []
  in
  regs @ mems

(* -- Sources and sinks --------------------------------------------- *)

let apply_source t shadow ~addr ~len ~source =
  match t.source_tag ~source with
  | Clear ->
    for a = addr to addr + len - 1 do
      let old = List.length (Shadow.tags_of_addr shadow a) in
      t.counters.shadow_ops <- t.counters.shadow_ops + old;
      Shadow.clear_addr shadow a
    done
  | Taint (tag, `Replace) ->
    for a = addr to addr + len - 1 do
      let before = Shadow.tags_of_addr shadow a in
      t.counters.shadow_ops <-
        t.counters.shadow_ops + List.length before + 1;
      log_arrivals t ~before ~addr:a ~via:"source" [ tag ];
      Shadow.set_addr_tags shadow a [ tag ];
      if t.watches <> [] then check_confluence_addr t shadow a
    done;
    t.counters.source_bytes <- t.counters.source_bytes + len
  | Taint (tag, `Union) ->
    for a = addr to addr + len - 1 do
      log_arrivals t ~before:(Shadow.tags_of_addr shadow a) ~addr:a
        ~via:"source" [ tag ];
      Shadow.union_into_addr shadow a [ tag ];
      if t.watches <> [] then check_confluence_addr t shadow a
    done;
    t.counters.source_bytes <- t.counters.source_bytes + len;
    t.counters.shadow_ops <- t.counters.shadow_ops + len
  | Copy_within { src; extra } ->
    (* data copied from elsewhere in memory by the OS (proc_read):
       provenance travels with it, optionally gaining a tag for the
       crossing (the paper's Fig. 2 accumulation) *)
    for i = 0 to len - 1 do
      let from_tags = Shadow.tags_of_addr shadow (src + i) in
      let tags =
        match extra with
        | Some tag -> from_tags @ [ tag ]
        | None -> from_tags
      in
      let a = addr + i in
      let before = Shadow.tags_of_addr shadow a in
      t.counters.shadow_ops <-
        t.counters.shadow_ops + List.length before + List.length tags;
      log_arrivals t ~before ~addr:a ~via:"source" tags;
      Shadow.set_addr_tags shadow a tags;
      if tags <> [] then
        t.counters.source_bytes <- t.counters.source_bytes + 1;
      if t.watches <> [] then check_confluence_addr t shadow a
    done
  | Restore { key; extra } ->
    (* data materialized from captured storage (file read-back):
       restore the content's taint as of the capture, plus the
       storage-crossing tag *)
    let stored = Hashtbl.find_opt t.snapshots key in
    for i = 0 to len - 1 do
      let from_tags =
        match stored with
        | Some arr when i < Array.length arr -> arr.(i)
        | Some _ | None -> []
      in
      let tags =
        match extra with
        | Some tag -> from_tags @ [ tag ]
        | None -> from_tags
      in
      let a = addr + i in
      let before = Shadow.tags_of_addr shadow a in
      t.counters.shadow_ops <-
        t.counters.shadow_ops + List.length before + List.length tags;
      log_arrivals t ~before ~addr:a ~via:"source" tags;
      Shadow.set_addr_tags shadow a tags;
      if tags <> [] then
        t.counters.source_bytes <- t.counters.source_bytes + 1;
      if t.watches <> [] then check_confluence_addr t shadow a
    done

let sink_cell t sink =
  match Hashtbl.find_opt t.sink_stats sink with
  | Some stats -> stats
  | None ->
    let stats = Tag_stats.create () in
    Hashtbl.add t.sink_stats sink stats;
    stats

let apply_sink t shadow ~addr ~len ~sink =
  let stats = sink_cell t sink in
  for a = addr to addr + len - 1 do
    match Shadow.tags_of_addr shadow a with
    | [] -> ()
    | tags ->
      t.counters.sink_tainted_bytes <- t.counters.sink_tainted_bytes + 1;
      List.iter (Tag_stats.incr stats) tags
  done

let sink_profile t =
  Hashtbl.fold
    (fun sink stats acc -> (sink, Tag_stats.snapshot stats) :: acc)
    t.sink_stats []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* -- Main event application ---------------------------------------- *)

let apply_event t shadow ~width ~step (event : Extract.event) =
  match event with
  | Extract.Copy { srcs; dsts } ->
    apply_direct t shadow ~kind:Policy.Direct_copy ~width ~step srcs dsts
  | Extract.Compute { srcs; dsts } ->
    apply_direct t shadow ~kind:Policy.Direct_compute ~width ~step srcs dsts
  | Extract.Addr_dep { addr_srcs; dsts } ->
    let candidates = gather shadow addr_srcs in
    if candidates <> [] then
      List.iter
        (fun dst ->
          apply_indirect t shadow ~kind:Policy.Addr ~width ~step candidates
            dst)
        dsts
  | Extract.Branch_point { cond_srcs; scope_end; taken = _ } ->
    if t.config.track_ctrl then begin
      let candidates = gather shadow cond_srcs in
      push_scope t ~tags:candidates ~end_pc:scope_end
        ~expires_at_step:max_int
    end
  | Extract.Indirect_jump { target_srcs } ->
    if t.config.track_ctrl then begin
      let candidates = gather shadow target_srcs in
      push_scope t ~tags:candidates ~end_pc:(-1)
        ~expires_at_step:(step + t.config.ijump_scope_len)
    end
  | Extract.Sys_source { addr; len; source } ->
    apply_source t shadow ~addr ~len ~source
  | Extract.Sys_sink { addr; len; sink } -> apply_sink t shadow ~addr ~len ~sink
  | Extract.Sys_snapshot { addr; len; key } ->
    Hashtbl.replace t.snapshots key
      (Array.init len (fun i -> Shadow.tags_of_addr shadow (addr + i)))
  | Extract.Sys_clear_reg r ->
    Shadow.clear_reg shadow r;
    t.counters.shadow_ops <- t.counters.shadow_ops + 1

let process_record_inner t (r : Machine.exec_record) =
  let shadow = the_shadow t in
  let step = r.step in
  t.current_step <- step;
  t.current_pc <- r.pc;
  pop_scopes t ~pc:r.pc ~step;
  let width = width_of_record r in
  let events = Extract.events_of_record t.extract r in
  List.iter (apply_event t shadow ~width ~step) events;
  (* Control dependencies: writes under open scopes receive the scope
     tags as indirect flows. *)
  if t.config.track_ctrl && t.scopes <> [] then begin
    let candidates = scope_tags t in
    if candidates <> [] then
      List.iter
        (fun dst ->
          apply_indirect t shadow ~kind:Policy.Ctrl
            ~width:(width_of_record r) ~step candidates dst)
        (program_writes r)
  end;
  t.counters.steps <- t.counters.steps + 1;
  List.iter (fun f -> f r) t.record_hooks

let process_record t r =
  match t.instruments with
  | None -> process_record_inner t r
  | Some ins ->
    let t0 = Mitos_obs.Obs.now ins.obs in
    process_record_inner t r;
    Mitos_obs.Histogram.observe ins.record_latency
      (float_of_int (Mitos_obs.Obs.now ins.obs - t0));
    Mitos_obs.Registry.incr ins.records_total

let step t =
  match t.machine with
  | None -> invalid_arg "Engine.step: no machine attached"
  | Some machine -> (
    match Machine.step machine with
    | None -> false
    | Some record ->
      process_record t record;
      true)

let run ?(max_steps = 10_000_000) t =
  let n = ref 0 in
  while !n < max_steps && step t do
    incr n
  done;
  !n

(* -- Progress -------------------------------------------------------- *)

type progress = {
  prog_step : int;
  prog_pc : int;
  prog_direct_events : int;
  prog_indirect_events : int;
  prog_dfp_propagated : int;
  prog_ifp_propagated : int;
  prog_ifp_blocked : int;
  prog_shadow_ops : int;
  prog_evictions : int;
  prog_open_scopes : int;
  prog_source_bytes : int;
  prog_sink_tainted_bytes : int;
}

let progress t =
  {
    prog_step = t.counters.steps;
    prog_pc = t.current_pc;
    prog_direct_events = t.counters.direct_events;
    prog_indirect_events = t.counters.indirect_events;
    prog_dfp_propagated = t.counters.dfp_propagated;
    prog_ifp_propagated = t.counters.ifp_propagated;
    prog_ifp_blocked = t.counters.ifp_blocked;
    prog_shadow_ops = t.counters.shadow_ops;
    prog_evictions = t.counters.evictions;
    prog_open_scopes = List.length t.scopes;
    prog_source_bytes = t.counters.source_bytes;
    prog_sink_tainted_bytes = t.counters.sink_tainted_bytes;
  }
