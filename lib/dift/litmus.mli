(** Litmus tests for propagation policies.

    A policy author (the paper's framework explicitly invites new
    policies) needs to know exactly which flow classes their policy
    propagates. Each litmus case is a tiny program with one flow of a
    known class from a tainted source to an observed byte; running the
    suite against a policy yields, per case, whether taint reached the
    observation point. {!check} compares the outcomes against a
    declared profile and reports mismatches — a conformance test in a
    few lines:

    {[
      match Litmus.check ~direct:true ~addr:true ~ctrl:false my_policy with
      | [] -> ()
      | failures -> (* the policy does not do what you think *)
    ]} *)

(** Flow class exercised by a case. *)
type flow_class = Direct | Addr | Ctrl | Ijump

type case = {
  case_name : string;
  case_class : flow_class;
  description : string;
}

val cases : case list
(** The suite: direct copy chains, computation unions, clean
    overwrites, address-dependent loads and stores, control
    dependencies inside and after their scope, tainted indirect
    jumps. *)

type outcome = {
  case : case;
  tainted : bool;  (** did taint reach the observation byte? *)
}

val run : Policy.t -> outcome list
(** Execute every case under the policy (full engine, default
    config). *)

(** A case outcome with its run artifacts, for offline analyzers that
    need more than the boolean — the blame analyzer diffs the final
    shadow state against oracle runs and joins it with the audit
    log. *)
type detail = {
  detail_case : case;
  observe : int;  (** the case's observation address *)
  never : bool;  (** engineered to stay clean under any policy *)
  engine : Engine.t;  (** the engine after the run, shadow attached *)
  tainted : bool;
}

val run_detailed : ?instrument:(Engine.t -> unit) -> Policy.t -> detail list
(** {!run}, keeping each case's engine. [instrument] is applied to
    every engine after creation, before the machine is attached —
    pass [Engine.instrument ~audit] wiring here to audit the suite. *)

val check :
  direct:bool -> addr:bool -> ctrl:bool -> Policy.t -> (case * bool * bool) list
(** [check ~direct ~addr ~ctrl policy] runs the suite and returns the
    mismatches as [(case, expected, got)]. [Ijump] cases follow
    [ctrl]. Cases engineered to never taint (scope-exit checks)
    expect [false] regardless of the profile. An empty list means the
    policy conforms to the declared profile. *)
