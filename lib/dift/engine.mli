(** The DIFT engine.

    Drives a {!Mitos_isa.Machine} (or a recorded trace), classifies
    each executed instruction with {!Mitos_flow.Extract}, maintains the
    shadow state and the control-dependency scopes, and consults the
    active {!Policy} for every tag movement. This is the FAROS-plus-
    MITOS pipeline of the paper's Fig. 6 (steps 3-5): direct flows,
    then [is_IFP] filtering, then Alg. 2 on the indirect flows.

    Taint sources: syscall write effects are resolved to tags by the
    [source_tag] callback (implemented by the OS layer). *)

open Mitos_tag

(** How a source effect taints the written range. *)
type source_action =
  | Taint of Tag.t * [ `Replace | `Union ]
      (** [`Replace]: fresh data overwrites the range (a network read);
          [`Union]: the range is additionally marked (the kernel
          marking a region as export-table). *)
  | Clear  (** untainted fresh data *)
  | Copy_within of { src : int; extra : Tag.t option }
      (** the OS copied the range from [src] within the same memory
          (a cross-process read): existing provenance travels with the
          data and [extra] (e.g. the source process's tag) is appended
          — the accumulation of the paper's Fig. 2 *)
  | Restore of { key : int; extra : Tag.t option }
      (** the OS materialized content captured earlier by a
          [Sys_snapshot_mem] effect (a file read-back): the stored
          content's taint is restored and [extra] (the file's tag)
          appended; with no snapshot under [key] only [extra]
          applies *)

type config = {
  m_prov : int;  (** provenance list bound M_prov *)
  eviction : Shadow.eviction_strategy;
  track_ctrl : bool;  (** consider control dependencies at all *)
  ijump_scope_len : int;
      (** instruction budget of the scope opened by a tainted indirect
          jump (targets are statically unknown; see DESIGN.md) *)
  route_direct_through_policy : bool;
      (** consult the policy on direct flows too (Table II's MITOS
          configuration); [false] = classic DIFT direct handling *)
  shadow_backend : Shadow.backend;  (** hashed (sparse) or paged *)
  shadow_shards : int option;
      (** sub-table count for the hashed shadow store; [None] (the
          default) uses {!Shadow.default_shards} — the process-wide
          [--shards] knob *)
}

val default_config : config

(** Aggregate counters, updated as the engine runs. *)
type counters = {
  mutable steps : int;
  mutable direct_events : int;
  mutable indirect_events : int;  (** IFP opportunities encountered *)
  mutable dfp_propagated : int;  (** tags written by direct flows *)
  mutable ifp_propagated : int;
  mutable ifp_blocked : int;
  mutable ctrl_scopes_opened : int;
  mutable source_bytes : int;  (** bytes tainted at sources *)
  mutable sink_tainted_bytes : int;  (** tainted bytes leaving via sinks *)
  mutable shadow_ops : int;
      (** provenance-list writes — the spatiotemporal cost proxy *)
  mutable evictions : int;
      (** provenance-list evictions — taint silently dropped by the
          M_prov bound (always counted, audited or not) *)
  per_type_propagated : int array;  (** per [Tag_type.to_int], IFP only *)
  per_type_blocked : int array;
}

type t

val create :
  ?config:config ->
  policy:Policy.t ->
  source_tag:(source:int -> source_action) ->
  Mitos_isa.Program.t ->
  t
(** The shadow memory is sized on first attach (see {!attach}). *)

val attach : t -> Mitos_isa.Machine.t -> unit
(** Bind the machine whose execution will be tracked. Must be running
    the same program the engine was created for. *)

val attach_shadow : t -> mem_size:int -> unit
(** Create the shadow state without a live machine — the replay path,
    where records come from a trace via {!process_record}. *)

val attach_existing_shadow : t -> Shadow.t -> unit
(** Resume tracking from a previously captured shadow state (see
    [Shadow.to_string]/[of_string]): a long replay can be suspended at
    a point with no open control scopes (check {!active_scopes}),
    checkpointed, and continued in a fresh engine. Raises
    [Invalid_argument] if the shadow's [M_prov] disagrees with the
    engine config. *)

val shadow : t -> Shadow.t
val stats : t -> Tag_stats.t
val counters : t -> counters
val policy : t -> Policy.t
val config : t -> config

val process_record : t -> Mitos_isa.Machine.exec_record -> unit
(** Apply one execution record to the shadow state (replay path). *)

val step : t -> bool
(** Execute one machine instruction and track it; [false] when the
    machine has halted. *)

val run : ?max_steps:int -> t -> int
(** Run to halt (or [max_steps], default 10 million); returns steps
    executed. *)

val active_scopes : t -> int
(** Currently open control-dependency scopes. *)

val on_record : t -> (Mitos_isa.Machine.exec_record -> unit) -> unit
(** Register a callback invoked after each record is processed (used
    by the recorder and live metrics). *)

val instrument :
  ?sample_every:int -> ?audit:Mitos_obs.Audit.t -> t -> Mitos_obs.Obs.t -> unit
(** Wire the engine to an observability context:

    - a per-record decision-latency histogram
      ([mitos_engine_record_latency_ticks]) and record counter;
    - IFP propagate/block counters per {!Mitos_tag.Tag_type}
      ([mitos_engine_ifp_decisions_total{ty,verdict}]);
    - shadow-op and scope-depth gauges plus an [engine] trace counter
      track, sampled every [sample_every] records (default 1024) via
      the {!on_record} mechanism. (Run-level quantities — tainted
      bytes, copies, distinct tags — are the {!Metrics.attach_sampler}
      layer's job.)

    [audit] additionally threads a decision flight recorder through
    the engine: every policy consultation stamps its step/pc/flow
    context onto the recorder (so [Decision] records emitted by the
    policy's Alg. 1/2 calls — see [Mitos.Decision.set_audit] — carry
    it), provenance-list evictions in the engine's shadow surface as
    [Eviction] records, and — when the obs context is live too —
    records are cross-linked into the Chrome trace as instant events.
    Auditing is gated on the recorder's own enabled flag, so a
    disabled obs context with a live recorder audits without tracing.

    With a disabled context ({!Mitos_obs.Obs.disabled}) and no live
    recorder this installs nothing — the engine keeps its zero-cost
    path (one pointer compare per record, plus one per policy
    consultation). Call before running; raises [Invalid_argument] if
    the engine is already instrumented or [sample_every < 1]. *)

(** {1 Tag confluence (online detection)}

    The paper notes that a "tag confluence (when two or more tags come
    together)" can drive policy, and FAROS "flags the attack when
    these two tags (netflow and export-table) come together on a
    byte". Watching a type pair turns that into an online alarm: the
    engine raises an alert the first time any byte acquires tags of
    both types, with the step at which it happened — live detection
    rather than post-mortem counting. *)

type alert = {
  alert_addr : int;
  alert_step : int;  (** machine step at which the pair first met *)
  alert_types : Tag_type.t * Tag_type.t;
}

val watch_confluence : t -> Tag_type.t -> Tag_type.t -> unit
(** Register a type pair to watch. May be called multiple times; call
    before running. *)

val alerts : t -> alert list
(** All alerts raised so far, in order of occurrence (one per byte and
    pair). *)

val first_alert_step : t -> int option
(** Step of the earliest alert, if any — the detection latency. *)

(** {1 Sink forensics}

    Every tainted byte crossing a sink (e.g. [net_send]) is attributed
    to the tags it carries — the flow-tomography view the paper's
    introduction motivates (which input did the exfiltrated data come
    from?). *)

val sink_profile : t -> (int * (Tag.t * int) list) list
(** Per sink id: how many tainted bytes carrying each tag crossed it,
    sorted by sink id then tag. *)

val site_profile : t -> (int * int * int) list
(** Per program point that saw indirect-flow decisions:
    [(pc, propagated, blocked)], busiest first — which instructions in
    the program are the IFP hot spots (and, under a restrictive
    policy, where taint is being lost). *)

(** {1 Taint timelines}

    With history recording enabled, the engine logs every tag arrival
    at every memory byte — when it happened and through which flow
    class — so an analyst can ask "how did this byte end up tainted?"
    and get the byte's life story (the investigative use the paper's
    forensics motivation implies). Off by default: it costs memory
    proportional to total arrivals. *)

type arrival = {
  arr_tag : Tag.t;
  arr_step : int;
  arr_via : string;
      (** "source", "copy", "compute", "addr-dep", "ctrl-dep", "ijump" *)
}

val record_history : t -> unit
(** Enable arrival logging (call before running). *)

(** {1 Live progress}

    A constant-cost snapshot of where the run is — plain field reads
    only (no shadow-store traversal), so the telemetry server's
    exposition domain can call it mid-run for [/snapshot.json] without
    perturbing or racing the hot path beyond benign word-sized
    reads. *)

type progress = {
  prog_step : int;  (** records processed so far *)
  prog_pc : int;  (** pc of the last record *)
  prog_direct_events : int;
  prog_indirect_events : int;
  prog_dfp_propagated : int;
  prog_ifp_propagated : int;
  prog_ifp_blocked : int;
  prog_shadow_ops : int;
  prog_evictions : int;
  prog_open_scopes : int;
  prog_source_bytes : int;
  prog_sink_tainted_bytes : int;
}

val progress : t -> progress

val taint_history : t -> int -> arrival list
(** Arrivals at the byte, oldest first; [] if history is off or the
    byte never received a tag. Includes arrivals later overwritten. *)
