open Mitos_tag

let intersect name a b =
  Policy.make ~name ~select:(fun request ->
      let from_a = Policy.select a request in
      let from_b = Policy.select b request in
      let in_b tag = List.exists (Tag.equal tag) from_b in
      List.filter in_b from_a)

let union name a b =
  Policy.make ~name ~select:(fun request ->
      let from_a = Policy.select a request in
      let from_b = Policy.select b request in
      from_a
      @ List.filter
          (fun tag -> not (List.exists (Tag.equal tag) from_a))
          from_b)

let per_type ~default table =
  let policy_for ty =
    match
      List.find_opt (fun (t, _) -> Tag_type.equal t ty) table
    with
    | Some (_, policy) -> policy
    | None -> default
  in
  let name =
    Printf.sprintf "per-type(%s)"
      (String.concat ","
         (List.map
            (fun (ty, p) ->
              Printf.sprintf "%s:%s" (Tag_type.to_string ty) (Policy.name p))
            table))
  in
  Policy.make ~name ~select:(fun request ->
      (* group candidates by type, preserving order within each group *)
      let selected_by ty =
        let mine =
          List.filter
            (fun tag -> Tag_type.equal (Tag.ty tag) ty)
            request.Policy.candidates
        in
        if mine = [] then []
        else
          Policy.select (policy_for ty)
            { request with Policy.candidates = mine }
      in
      let union_selected =
        List.concat_map selected_by Tag_type.all
      in
      (* restore candidate order and honour the space bound *)
      let chosen =
        List.filter
          (fun tag -> List.exists (Tag.equal tag) union_selected)
          request.Policy.candidates
      in
      List.filteri (fun i _ -> i < request.Policy.space) chosen)

let cap_per_flow k inner =
  Policy.make
    ~name:(Printf.sprintf "cap%d(%s)" k (Policy.name inner))
    ~select:(fun request ->
      Policy.select inner request |> List.filteri (fun i _ -> i < k))

(* The one audit spine: every observation of a (request, selection)
   pair goes through here, whether it lands in the flight recorder
   ([audited]) or a user callback ([logging], kept as a thin
   adapter). *)
let audit_spine ~name ?on_select recorder inner =
  Policy.make ~name ~select:(fun request ->
      let chosen = Policy.select inner request in
      (match on_select with Some f -> f request chosen | None -> ());
      if Mitos_obs.Audit.enabled recorder then
        Mitos_obs.Audit.record_selection recorder ~step:request.Policy.step
          ~policy:(Policy.name inner)
          ~flow:(Policy.flow_kind_to_string request.Policy.kind)
          ~candidates:(List.map Tag.to_string request.Policy.candidates)
          ~chosen:(List.map Tag.to_string chosen)
          ();
      chosen)

let audited recorder inner =
  audit_spine
    ~name:(Printf.sprintf "audited(%s)" (Policy.name inner))
    recorder inner

let logging callback inner =
  audit_spine
    ~name:(Printf.sprintf "logged(%s)" (Policy.name inner))
    ~on_select:callback Mitos_obs.Audit.null inner
