open Mitos_tag
module Machine = Mitos_isa.Machine
module Instr = Mitos_isa.Instr
module Program = Mitos_isa.Program

type flow_class = Direct | Addr | Ctrl | Ijump

type case = { case_name : string; case_class : flow_class; description : string }

(* Self-contained source: syscall 1 fills 4 bytes at r1 with 'x'
   (0x78) tainted network#1. *)
let source_tag ~source =
  if source = 1 then Engine.Taint (Tag.make Tag_type.Network 1, `Replace)
  else Engine.Clear

let handler m ~sysno:_ =
  let addr = Machine.get_reg m 1 in
  Machine.write_bytes m addr (Bytes.make 4 'x');
  [ Machine.Sys_wrote_mem { addr; len = 4; source = 1 } ]

let src = 0x100 (* tainted source bytes *)
let obs = 0x200 (* observation byte *)

(* every program starts by tainting 4 bytes at [src] *)
let prologue = [ Instr.Li (1, src); Instr.Syscall 1 ]

type spec = {
  case : case;
  program : Instr.t list;
  observe : int;  (** address checked for taint *)
  never : bool;  (** engineered to stay clean under any policy *)
}

let mk name cls ?(observe = obs) ?(never = false) description program =
  {
    case = { case_name = name; case_class = cls; description };
    program = prologue @ program @ [ Instr.Halt ];
    observe;
    never;
  }

let specs =
  [
    mk "copy-chain" Direct
      "load a tainted byte, store it elsewhere (copy dependency)"
      [
        Instr.Li (4, src); Instr.Load (Instr.W8, 5, 4, 0);
        Instr.Li (6, obs); Instr.Store (Instr.W8, 5, 6, 0);
      ];
    mk "compute-union" Direct
      "combine a tainted and a clean value by addition"
      [
        Instr.Li (4, src); Instr.Load (Instr.W8, 5, 4, 0);
        Instr.Li (6, 41); Instr.Bin (Instr.Add, 7, 5, 6);
        Instr.Li (6, obs); Instr.Store (Instr.W8, 7, 6, 0);
      ];
    mk "clean-overwrite" Direct ~never:true
      "a clean store over a previously tainted byte clears it"
      [
        (* taint obs directly, then overwrite with a constant *)
        Instr.Li (4, src); Instr.Load (Instr.W8, 5, 4, 0);
        Instr.Li (6, obs); Instr.Store (Instr.W8, 5, 6, 0);
        Instr.Li (5, 0); Instr.Store (Instr.W8, 5, 6, 0);
      ];
    mk "addr-load" Addr
      "load through a tainted index (table translation)"
      [
        Instr.Li (4, src); Instr.Load (Instr.W8, 5, 4, 0);
        (* address = 0x300 + tainted 0x78; the table is clean *)
        Instr.Bini (Instr.Add, 5, 5, 0x300);
        Instr.Load (Instr.W8, 7, 5, 0);
        Instr.Li (6, obs); Instr.Store (Instr.W8, 7, 6, 0);
      ];
    mk "addr-store" Addr ~observe:(0x400 + 0x78)
      "store a clean value through a tainted pointer"
      [
        Instr.Li (4, src); Instr.Load (Instr.W8, 5, 4, 0);
        Instr.Bini (Instr.Add, 5, 5, 0x400);
        Instr.Li (7, 1); Instr.Store (Instr.W8, 7, 5, 0);
      ];
    mk "ctrl-in-scope" Ctrl
      "a write guarded by a branch on tainted data"
      [
        (* 2 *) Instr.Li (4, src);
        (* 3 *) Instr.Load (Instr.W8, 5, 4, 0);
        (* 4 *) Instr.Li (6, 0);
        (* 5 *) Instr.Branch (Instr.Eq, 5, 6, 8);
        (* 6 *) Instr.Li (7, 1);
        (* 7 *) Instr.Jmp 8;
        (* 8: join *) Instr.Li (9, obs);
        (* 9 *) Instr.Store (Instr.W8, 7, 9, 0);
      ];
    mk "ctrl-after-join" Ctrl ~never:true
      "a write after the branch's immediate post-dominator is outside \
       the scope"
      [
        (* 2 *) Instr.Li (4, src);
        (* 3 *) Instr.Load (Instr.W8, 5, 4, 0);
        (* 4 *) Instr.Li (6, 0);
        (* 5 *) Instr.Branch (Instr.Eq, 5, 6, 7);
        (* 6 *) Instr.Nop;
        (* 7: join *) Instr.Li (7, 1);
        (* 8 *) Instr.Li (9, obs);
        (* 9 *) Instr.Store (Instr.W8, 7, 9, 0);
      ];
    mk "ijump-target" Ijump
      "a write immediately after an indirect jump through a tainted \
       register"
      [
        (* 2 *) Instr.Li (4, src);
        (* 3 *) Instr.Load (Instr.W8, 5, 4, 0);
        (* force the tainted value to the jump target 7 *)
        (* 4 *) Instr.Bini (Instr.And, 5, 5, 0);
        (* 5 *) Instr.Bini (Instr.Add, 5, 5, 7);
        (* 6 *) Instr.Jr 5;
        (* 7 *) Instr.Li (7, 1);
        (* 8 *) Instr.Li (9, obs);
        (* 9 *) Instr.Store (Instr.W8, 7, 9, 0);
      ];
  ]

let cases = List.map (fun spec -> spec.case) specs

type outcome = { case : case; tainted : bool }

type detail = {
  detail_case : case;
  observe : int;
  never : bool;
  engine : Engine.t;
  tainted : bool;
}

let run_spec_detailed ?instrument policy spec =
  let program = Program.make (Array.of_list spec.program) in
  let machine = Machine.create ~mem_size:4096 ~syscall:handler program in
  (* direct flows are routed through the policy so the suite's Direct
     axis measures the policy, not the engine's unconditional path *)
  let config =
    { Engine.default_config with route_direct_through_policy = true }
  in
  let engine = Engine.create ~config ~policy ~source_tag program in
  (* before [attach], so instrumentation (e.g. the audit recorder's
     eviction observer) sees the shadow from its creation *)
  (match instrument with Some f -> f engine | None -> ());
  Engine.attach engine machine;
  ignore (Engine.run engine);
  {
    detail_case = spec.case;
    observe = spec.observe;
    never = spec.never;
    engine;
    tainted = Shadow.is_tainted_addr (Engine.shadow engine) spec.observe;
  }

let run_detailed ?instrument policy =
  List.map (run_spec_detailed ?instrument policy) specs

let run_spec policy spec =
  let d = run_spec_detailed policy spec in
  { case = d.detail_case; tainted = d.tainted }

let run policy = List.map (run_spec policy) specs

let check ~direct ~addr ~ctrl policy =
  List.filter_map
    (fun spec ->
      let ({ tainted; _ } : outcome) = run_spec policy spec in
      let expected =
        if spec.never then false
        else
          match spec.case.case_class with
          | Direct -> direct
          | Addr -> addr
          | Ctrl | Ijump -> ctrl
      in
      if tainted = expected then None else Some (spec.case, expected, tainted))
    specs
