(** Policy combinators.

    The paper positions MITOS as one point in a space of propagation
    policies ("flexibly adapts to different scenarios and security
    needs"); real deployments mix concerns — a hard safety rail around
    a cost-driven core, different handling per tag type, an audit log.
    These combinators build such stacks from the primitives in
    {!Policies} without touching the engine. *)

open Mitos_tag

val intersect : string -> Policy.t -> Policy.t -> Policy.t
(** [intersect name a b]: propagate a tag only if {e both} policies
    select it — e.g. MITOS further restricted by a Minos-style width
    rail. Selection order follows [a]. *)

val union : string -> Policy.t -> Policy.t -> Policy.t
(** Propagate if {e either} selects it (a's picks first, then b's
    additions) — e.g. a mandatory-propagation allowlist on top of a
    cost-driven core. *)

val per_type : default:Policy.t -> (Tag_type.t * Policy.t) list -> Policy.t
(** Dispatch each candidate to the policy registered for its type
    (falling back to [default]); every sub-policy sees only its own
    candidates. Space is shared: the per-type selections are
    concatenated in candidate order and truncated to the request's
    space. *)

val cap_per_flow : int -> Policy.t -> Policy.t
(** Hard per-flow budget: at most [k] tags of the inner policy's
    selection survive (a DDIFT-style rate limit). *)

val audited : Mitos_obs.Audit.t -> Policy.t -> Policy.t
(** Audit wrapper: appends a [Selection] record (inner policy name,
    flow kind, candidates, chosen) to the flight recorder for every
    consultation, then passes the selection through unchanged. With a
    disabled recorder ([Mitos_obs.Audit.null]) the wrapper only
    forwards. This records the policy-level outcome; the per-tag
    marginal split comes from the [Mitos.Decision.set_audit] probe —
    both land in the same log. *)

val logging :
  (Policy.request -> Tag.t list -> unit) -> Policy.t -> Policy.t
(** Thin adapter over the same spine as {!audited}: invokes the
    callback with every request and the inner policy's selection
    instead of writing a record. *)
