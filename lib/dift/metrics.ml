open Mitos_tag

type summary = {
  policy : string;
  steps : int;
  wall_seconds : float;
  shadow_ops : int;
  footprint_bytes : int;
  tainted_bytes : int;
  total_copies : int;
  distinct_tags : int;
  ifp_propagated : int;
  ifp_blocked : int;
  dfp_propagated : int;
  ctrl_scopes : int;
  detected_bytes : int;
  fairness : Mitos.Fairness.report;
}

let detection_bytes shadow =
  Shadow.bytes_with_both shadow Tag_type.Network Tag_type.Export_table

let of_engine ?(wall_seconds = 0.0) engine =
  let shadow = Engine.shadow engine in
  let stats = Shadow.stats shadow in
  let c = Engine.counters engine in
  {
    policy = Policy.name (Engine.policy engine);
    steps = c.Engine.steps;
    wall_seconds;
    shadow_ops = c.Engine.shadow_ops;
    footprint_bytes = Shadow.footprint_bytes shadow;
    tainted_bytes = Shadow.tainted_bytes shadow;
    total_copies = Tag_stats.total stats;
    distinct_tags = Tag_stats.distinct stats;
    ifp_propagated = c.Engine.ifp_propagated;
    ifp_blocked = c.Engine.ifp_blocked;
    dfp_propagated = c.Engine.dfp_propagated;
    ctrl_scopes = c.Engine.ctrl_scopes_opened;
    detected_bytes = detection_bytes shadow;
    fairness = Mitos.Fairness.of_stats stats;
  }

let measure_run ?max_steps engine =
  let t0 = Unix.gettimeofday () in
  ignore (Engine.run ?max_steps engine);
  let wall_seconds = Unix.gettimeofday () -. t0 in
  of_engine ~wall_seconds engine

let propagation_rate s =
  let total = s.ifp_propagated + s.ifp_blocked in
  if total = 0 then 1.0 else float_of_int s.ifp_propagated /. float_of_int total

let header =
  [
    "policy"; "steps"; "shadow-ops"; "space(B)"; "tainted"; "copies";
    "ifp+"; "ifp-"; "detected"; "mse";
  ]

let row s =
  [
    s.policy;
    string_of_int s.steps;
    string_of_int s.shadow_ops;
    string_of_int s.footprint_bytes;
    string_of_int s.tainted_bytes;
    string_of_int s.total_copies;
    string_of_int s.ifp_propagated;
    string_of_int s.ifp_blocked;
    string_of_int s.detected_bytes;
    Printf.sprintf "%.3g" s.fairness.Mitos.Fairness.mse;
  ]

type timeline = {
  steps_series : Mitos_util.Timeseries.t;
  copies : Mitos_util.Timeseries.t;
  tainted : Mitos_util.Timeseries.t;
  distinct : Mitos_util.Timeseries.t;
}

type sample = {
  at_step : int;
  sampled_copies : int;
  sampled_tainted : int;
  sampled_distinct : int;
}

(* The one sampling path for run-level quantities: every consumer — the
   Timeseries-based timeline below, the CLI's --metrics-out gauges —
   rides the same on_record hook instead of installing its own. *)
let attach_sampler ?(sample_every = 1024) ?registry
    ?(observe = fun (_ : sample) -> ()) engine =
  if sample_every < 1 then invalid_arg "Metrics.attach_sampler: sample_every";
  let gauges =
    Option.map
      (fun reg ->
        let module R = Mitos_obs.Registry in
        ( R.gauge reg ~help:"machine step at the last sample" "mitos_run_step",
          R.gauge reg ~help:"total tag copies" "mitos_run_tag_copies",
          R.gauge reg ~help:"tainted memory bytes" "mitos_run_tainted_bytes",
          R.gauge reg ~help:"live distinct tags" "mitos_run_distinct_tags" ))
      registry
  in
  let count = ref 0 in
  Engine.on_record engine (fun record ->
      incr count;
      if !count mod sample_every = 0 then begin
        let stats = Engine.stats engine in
        let s =
          {
            at_step = record.Mitos_isa.Machine.step;
            sampled_copies = Tag_stats.total stats;
            sampled_tainted = Shadow.tainted_bytes (Engine.shadow engine);
            sampled_distinct = Tag_stats.distinct stats;
          }
        in
        (match gauges with
        | Some (step_g, copies_g, tainted_g, distinct_g) ->
          let module R = Mitos_obs.Registry in
          R.set_gauge step_g (float_of_int s.at_step);
          R.set_gauge copies_g (float_of_int s.sampled_copies);
          R.set_gauge tainted_g (float_of_int s.sampled_tainted);
          R.set_gauge distinct_g (float_of_int s.sampled_distinct)
        | None -> ());
        observe s
      end)

let attach_timeline ?sample_every engine =
  let timeline =
    {
      steps_series = Mitos_util.Timeseries.create ~name:"steps" ();
      copies = Mitos_util.Timeseries.create ~name:"copies" ();
      tainted = Mitos_util.Timeseries.create ~name:"tainted" ();
      distinct = Mitos_util.Timeseries.create ~name:"distinct" ();
    }
  in
  attach_sampler ?sample_every engine ~observe:(fun s ->
      let step = float_of_int s.at_step in
      Mitos_util.Timeseries.add timeline.steps_series step step;
      Mitos_util.Timeseries.add timeline.copies step
        (float_of_int s.sampled_copies);
      Mitos_util.Timeseries.add timeline.tainted step
        (float_of_int s.sampled_tainted);
      Mitos_util.Timeseries.add timeline.distinct step
        (float_of_int s.sampled_distinct));
  timeline

let pp ppf s =
  Format.fprintf ppf
    "%s: steps=%d ops=%d space=%dB tainted=%d copies=%d ifp=+%d/-%d \
     detected=%d"
    s.policy s.steps s.shadow_ops s.footprint_bytes s.tainted_bytes
    s.total_copies s.ifp_propagated s.ifp_blocked s.detected_bytes
