(** A persistent pool of worker domains draining a task queue.

    {!Pool} is batch-shaped: submit a list, block until every result
    is back, in order. A network server needs the opposite shape —
    long-lived workers pulling independent, fire-and-forget tasks
    (one per accepted connection) as they arrive, with no result to
    collect and no batch boundary. This module is that executor; the
    [Mitos_net] decision server runs its per-connection loops on one.

    Tasks run in submission order modulo worker availability; nothing
    here is deterministic and nothing should be — determinism-sensitive
    callers use {!Pool}. A task that raises is contained: the exception
    is counted ({!failures}) and the worker moves on.

    [workers = 0] degenerates to inline execution: {!submit} runs the
    task on the calling domain before returning — the single-domain
    code path {e is} the multi-domain code path, mirroring the pool's
    [jobs = 1] contract.

    {b Sharding.} Each worker owns its own queue (own lock, own
    condition variable): {!submit} routes to the least-loaded worker
    (queued {e plus running} tasks, so a worker held by a long-lived
    connection loop never shadows an idle sibling),
    {!submit_to} pins by shard index, and a worker whose queue runs
    dry steals from its siblings before sleeping — so submitters and
    workers no longer serialize on a single queue lock, and the pool
    stays work-conserving. All queue locks share the
    ["executor:<name>"] {!Mitos_obs.Contended} series. *)

type t

val create : ?name:string -> workers:int -> unit -> t
(** Spawn [workers] domains ([0] = run tasks inline in {!submit}).
    [name] labels error output. Raises [Invalid_argument] if
    [workers < 0]. *)

val workers : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task on the least-loaded worker queue (or run it inline
    when [workers = 0]). Raises [Invalid_argument] after
    {!shutdown}. *)

val submit_to : t -> shard:int -> (unit -> unit) -> unit
(** Like {!submit} but routed to worker queue [shard mod workers]
    (any integer is accepted — hash values welcome): an affinity hint
    for tasks that touch the same sharded state, so they queue behind
    each other instead of contending. Work stealing may still migrate
    a pinned task to an idle worker; it is a routing preference, not a
    placement guarantee. *)

val pending : t -> int
(** Tasks enqueued or still running (always 0 when inline). Running
    work counts so that routing — and anyone watching the pool — sees
    a worker pinned inside a long-lived task as busy, not idle. *)

val failures : t -> int
(** Tasks that raised. *)

val shutdown : t -> unit
(** Stop accepting work, drain the queue, join the workers.
    Idempotent. *)
