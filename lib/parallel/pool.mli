(** A fixed-size pool of OCaml 5 domains with a chunked work queue.

    The experiment layer is embarrassingly parallel — grid cells,
    sensitivity sweeps, attack variants — but its output contract is
    a rendered report, and reports are diffed across runs (and in CI
    against a sequential run). The pool therefore guarantees:

    - {b Order preservation}: {!map} returns results in input order,
      whatever order tasks actually executed in. Reductions combine
      mapped values left-to-right in input order, so {!map_reduce}
      with a non-commutative [combine] is still deterministic.
    - {b Determinism}: tasks share no pool state; {!map_seeded}
      derives one RNG per task from [seed] and the task's {e index}
      (never from execution order), so a parallel run is byte-identical
      to a sequential one as long as the tasks themselves are pure
      (or own their mutable state).
    - {b Sequential degeneration}: [jobs = 1] spawns no domains and
      runs every task inline in the calling domain — the parallel
      code path {e is} the sequential code path.

    Scheduling: each batch is an array of tasks; workers (and the
    submitting domain, which participates) claim contiguous chunks of
    indices off an atomic cursor until the batch drains. Chunking
    amortizes the claim cost for large batches of small tasks; the
    default chunk targets ~8 chunks per worker and is always 1 for
    the small, heavy batches the experiment layer produces.

    Nested use: a task that calls back into its own pool (or any
    pool) runs that inner batch inline — the pool never deadlocks on
    re-entry, it just declines to parallelize nested levels.

    Exceptions: if tasks raise, the batch still runs to completion
    and the first exception (in {e completion} order) is re-raised in
    the submitting domain.

    The pool is safe to share between client domains (submissions
    serialize), but it is designed to be driven from one place — the
    benchmark harness or the CLI — around otherwise single-threaded
    code. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs] defaults
    to. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts [jobs - 1] worker domains ([jobs]
    includes the submitting domain). Default: {!default_jobs}.
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Parallelism degree, including the submitting domain. *)

val map : ?chunk:int -> t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map pool ~f xs] = [List.map f xs], computed on the pool.
    Results are in input order. *)

val map_array : ?chunk:int -> t -> f:('a -> 'b) -> 'a array -> 'b array

val mapi : ?chunk:int -> t -> f:(int -> 'a -> 'b) -> 'a list -> 'b list

val iter : ?chunk:int -> t -> f:('a -> unit) -> 'a list -> unit
(** Effects of [f] on distinct elements may run concurrently; [f]
    must not share unsynchronized mutable state across elements. *)

val map_reduce :
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'a list ->
  'b
(** [map] on the pool, then a left fold of [combine] over the results
    in input order (in the submitting domain). Deterministic even for
    non-commutative [combine]. *)

val map_seeded :
  ?chunk:int ->
  t ->
  seed:int ->
  f:(rng:Mitos_util.Rng.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** Like {!map}, with a private RNG per task. The RNG streams are
    split from [seed] by task index before dispatch, so they do not
    depend on [jobs] or on scheduling: [map_seeded ~seed] is
    reproducible and identical at any parallelism degree. *)

val map_opt : ?chunk:int -> t option -> f:('a -> 'b) -> 'a list -> 'b list
(** [map_opt (Some pool)] is [map pool]; [map_opt None] is
    [List.map]. The experiment layer takes [?pool] arguments and
    funnels through this. *)

val run_seq : t option -> (unit -> 'a) -> 'a
(** [run_seq pool f] just runs [f ()]; a documentation device for
    stages that must stay sequential (wall-clock measurements). *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent. Using the pool after
    [shutdown] raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown]. *)
