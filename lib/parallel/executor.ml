module Contended = Mitos_obs.Contended

(* One queue (and one lock, and one condition) per worker: submitters
   route to the least-loaded queue, so workers stop colliding on a
   single queue lock, and a worker whose own queue runs dry steals
   from its siblings before sleeping — sharded for throughput, still
   work-conserving. *)
type shard = {
  lock : Contended.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  (* queued + running tasks, read lock-free. Counting running work
     (decrement on completion, not on pop) matters for routing: a
     worker stuck in a long-lived task — a server connection loop —
     must not look idle, or every length tie would route new work
     behind it while a genuinely idle sibling sleeps unsignalled. *)
  len : int Atomic.t;
}

type t = {
  name : string;
  shards : shard array;  (* one per worker; empty when inline *)
  stopping : bool Atomic.t;
  mutable domains : unit Domain.t list;
  failures : int Atomic.t;
  inline : bool;
}

let run_task t task =
  try task () with _ -> Atomic.incr t.failures

let pop shard =
  Contended.lock shard.lock;
  let taken = Queue.take_opt shard.queue in
  Contended.unlock shard.lock;
  taken

(* run a task popped from [shard]; its slot in [shard.len] is released
   only once the task finishes *)
let run_from t shard task =
  run_task t task;
  Atomic.decr shard.len

let worker_loop t i =
  let own = t.shards.(i) in
  let n = Array.length t.shards in
  (* scan siblings in ring order from our right neighbour; the atomic
     length check keeps misses lock-free *)
  let steal () =
    let rec go k =
      if k >= n then None
      else
        let s = t.shards.((i + k) mod n) in
        if Atomic.get s.len > 0 then
          match pop s with Some task -> Some (s, task) | None -> go (k + 1)
        else go (k + 1)
    in
    go 1
  in
  let rec next () =
    match pop own with
    | Some task ->
      run_from t own task;
      next ()
    | None -> (
      match steal () with
      | Some (shard, task) ->
        run_from t shard task;
        next ()
      | None ->
        (* Exit only once our own queue is verifiably empty under its
           lock with the stop flag up: any racing submit holds this
           lock too, so it either lands before this check (we drain
           it) or observes the flag and refuses. *)
        Contended.lock own.lock;
        if not (Queue.is_empty own.queue) then begin
          Contended.unlock own.lock;
          next ()
        end
        else if Atomic.get t.stopping then Contended.unlock own.lock
        else begin
          Contended.wait own.lock own.work;
          Contended.unlock own.lock;
          next ()
        end)
  in
  next ()

let create ?(name = "executor") ~workers () =
  if workers < 0 then invalid_arg "Executor.create: workers must be >= 0";
  let t =
    {
      name;
      shards =
        Array.init workers (fun _ ->
            {
              lock = Contended.create ("executor:" ^ name);
              work = Condition.create ();
              queue = Queue.create ();
              len = Atomic.make 0;
            });
      stopping = Atomic.make false;
      domains = [];
      failures = Atomic.make 0;
      inline = workers = 0;
    }
  in
  t.domains <-
    List.init workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let workers t = Array.length t.shards

let refuse t =
  invalid_arg (Printf.sprintf "Executor.submit: %s is shut down" t.name)

let enqueue t shard task =
  Contended.lock shard.lock;
  if Atomic.get t.stopping then begin
    Contended.unlock shard.lock;
    refuse t
  end;
  Queue.add task shard.queue;
  Atomic.incr shard.len;
  Condition.signal shard.work;
  Contended.unlock shard.lock

let submit_inline t task =
  if Atomic.get t.stopping then refuse t;
  run_task t task

let submit t task =
  if t.inline then submit_inline t task
  else begin
    (* least-loaded routing: an idle worker has an empty queue, so new
       work lands where someone is awake to take it immediately *)
    let best = ref 0 and best_len = ref max_int in
    Array.iteri
      (fun i s ->
        let len = Atomic.get s.len in
        if len < !best_len then begin
          best := i;
          best_len := len
        end)
      t.shards;
    enqueue t t.shards.(!best) task
  end

let submit_to t ~shard task =
  if t.inline then submit_inline t task
  else
    let n = Array.length t.shards in
    enqueue t t.shards.(((shard mod n) + n) mod n) task

let pending t =
  Array.fold_left (fun acc s -> acc + Atomic.get s.len) 0 t.shards

let failures t = Atomic.get t.failures

let shutdown t =
  let already = Atomic.exchange t.stopping true in
  Array.iter
    (fun s ->
      Contended.lock s.lock;
      Condition.broadcast s.work;
      Contended.unlock s.lock)
    t.shards;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end
