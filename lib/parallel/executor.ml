module Contended = Mitos_obs.Contended

type t = {
  name : string;
  lock : Contended.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  failures : int Atomic.t;
  inline : bool;
}

let run_task t task =
  try task () with _ -> Atomic.incr t.failures

let worker_loop t =
  let rec next () =
    Contended.lock t.lock;
    let rec wait () =
      match Queue.take_opt t.queue with
      | Some task ->
        Contended.unlock t.lock;
        Some task
      | None ->
        if t.stopping then begin
          Contended.unlock t.lock;
          None
        end
        else begin
          Contended.wait t.lock t.work;
          wait ()
        end
    in
    match wait () with
    | None -> ()
    | Some task ->
      run_task t task;
      next ()
  in
  next ()

let create ?(name = "executor") ~workers () =
  if workers < 0 then invalid_arg "Executor.create: workers must be >= 0";
  let t =
    {
      name;
      lock = Contended.create ("executor:" ^ name);
      work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      failures = Atomic.make 0;
      inline = workers = 0;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = List.length t.domains

let submit t task =
  if t.inline then begin
    if t.stopping then
      invalid_arg (Printf.sprintf "Executor.submit: %s is shut down" t.name);
    run_task t task
  end
  else begin
    Contended.lock t.lock;
    if t.stopping then begin
      Contended.unlock t.lock;
      invalid_arg (Printf.sprintf "Executor.submit: %s is shut down" t.name)
    end;
    Queue.add task t.queue;
    Condition.signal t.work;
    Contended.unlock t.lock
  end

let pending t =
  Contended.lock t.lock;
  let n = Queue.length t.queue in
  Contended.unlock t.lock;
  n

let failures t = Atomic.get t.failures

let shutdown t =
  Contended.lock t.lock;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Contended.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end
