(* A batch-oriented domain pool. One batch at a time is exposed to
   the workers as (task array, atomic cursor); workers and the
   submitting domain claim chunks of indices off the cursor until the
   batch drains. Completion is detected by an atomic count of
   finished tasks, so it does not matter which domain finishes last —
   the last one flips [current] back to [None] and wakes the
   submitter.

   Memory model: every result slot is written before the writing
   domain's fetch-and-add on [finished]; the submitter only reads
   results after observing [finished = size] (an SC atomic read), so
   all task writes happen-before the submitter's reads. *)

(* Tasks that re-enter the pool (nested [map] from inside a task) are
   executed inline: a worker that blocked on an inner batch while
   occupying a slot of the outer one could deadlock the pool. The
   flag is set permanently on worker domains and temporarily on the
   submitting domain while it participates in draining its own batch
   (its tasks would otherwise re-acquire the submit mutex). *)
let in_pool_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type batch = {
  run_task : int -> unit;
  size : int;
  chunk : int;
  next : int Atomic.t;  (* cursor: first unclaimed task index *)
  finished : int Atomic.t;  (* tasks fully executed *)
  mutable failure : exn option;  (* first failure; under the pool mutex *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  have_work : Condition.t;  (* a batch was submitted, or shutdown *)
  batch_done : Condition.t;  (* the current batch drained *)
  submit : Mutex.t;  (* serializes submitting domains *)
  mutable current : batch option;
  mutable epoch : int;  (* bumped once per submitted batch *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

let record_failure pool batch exn =
  Mutex.lock pool.mutex;
  (match batch.failure with
  | None -> batch.failure <- Some exn
  | Some _ -> ());
  Mutex.unlock pool.mutex

(* Claim and run chunks until the cursor runs off the end. Returns
   with the batch possibly still in flight on other domains. *)
let drain pool batch =
  let rec loop () =
    let lo = Atomic.fetch_and_add batch.next batch.chunk in
    if lo < batch.size then begin
      let hi = min batch.size (lo + batch.chunk) in
      for i = lo to hi - 1 do
        try batch.run_task i with exn -> record_failure pool batch exn
      done;
      let finished =
        hi - lo + Atomic.fetch_and_add batch.finished (hi - lo)
      in
      if finished = batch.size then begin
        Mutex.lock pool.mutex;
        pool.current <- None;
        Condition.broadcast pool.batch_done;
        Mutex.unlock pool.mutex
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop pool last_epoch =
  Mutex.lock pool.mutex;
  while
    (not pool.stopping)
    && (Option.is_none pool.current || pool.epoch = last_epoch)
  do
    Condition.wait pool.have_work pool.mutex
  done;
  if pool.stopping then Mutex.unlock pool.mutex
  else begin
    let epoch = pool.epoch in
    let batch = Option.get pool.current in
    Mutex.unlock pool.mutex;
    drain pool batch;
    worker_loop pool epoch
  end

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      have_work = Condition.create ();
      batch_done = Condition.create ();
      submit = Mutex.create ();
      current = None;
      epoch = 0;
      stopping = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_pool_task true;
            worker_loop pool 0));
  pool

(* Run tasks [0, size) and re-raise the first failure after the whole
   batch has executed — same contract inline and on the pool. *)
let run_batch pool ~chunk ~size run_task =
  if size > 0 then begin
    let failure =
      if pool.jobs = 1 || Domain.DLS.get in_pool_task then begin
        (* inline: the sequential degeneration and the nested case *)
        let failure = ref None in
        for i = 0 to size - 1 do
          try run_task i
          with exn -> if Option.is_none !failure then failure := Some exn
        done;
        !failure
      end
      else begin
        Mutex.lock pool.submit;
        Mutex.lock pool.mutex;
        if pool.stopping then begin
          Mutex.unlock pool.mutex;
          Mutex.unlock pool.submit;
          invalid_arg "Pool: used after shutdown"
        end;
        let batch =
          {
            run_task;
            size;
            chunk;
            next = Atomic.make 0;
            finished = Atomic.make 0;
            failure = None;
          }
        in
        pool.current <- Some batch;
        pool.epoch <- pool.epoch + 1;
        Condition.broadcast pool.have_work;
        Mutex.unlock pool.mutex;
        Domain.DLS.set in_pool_task true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_pool_task false)
          (fun () -> drain pool batch);
        Mutex.lock pool.mutex;
        while Atomic.get batch.finished < batch.size do
          Condition.wait pool.batch_done pool.mutex
        done;
        let failure = batch.failure in
        Mutex.unlock pool.mutex;
        Mutex.unlock pool.submit;
        failure
      end
    in
    match failure with Some exn -> raise exn | None -> ()
  end

(* Target ~8 chunks per domain so the tail of a batch load-balances;
   experiment batches (tens of heavy tasks) always get chunk 1. *)
let resolve_chunk chunk ~jobs ~size =
  match chunk with
  | Some c -> if c < 1 then invalid_arg "Pool: chunk must be >= 1" else c
  | None -> max 1 (size / (jobs * 8))

let map_array ?chunk pool ~f xs =
  let size = Array.length xs in
  if size = 0 then [||]
  else begin
    let chunk = resolve_chunk chunk ~jobs:pool.jobs ~size in
    let results = Array.make size None in
    run_batch pool ~chunk ~size (fun i -> results.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?chunk pool ~f xs =
  Array.to_list (map_array ?chunk pool ~f (Array.of_list xs))

let mapi ?chunk pool ~f xs =
  let xs = Array.of_list xs in
  let size = Array.length xs in
  if size = 0 then []
  else begin
    let chunk = resolve_chunk chunk ~jobs:pool.jobs ~size in
    let results = Array.make size None in
    run_batch pool ~chunk ~size (fun i -> results.(i) <- Some (f i xs.(i)));
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let iter ?chunk pool ~f xs = ignore (map ?chunk pool ~f xs)

let map_reduce ?chunk pool ~map:f ~combine ~init xs =
  Array.fold_left combine init (map_array ?chunk pool ~f (Array.of_list xs))

let map_seeded ?chunk pool ~seed ~f xs =
  (* split all streams by index before dispatch: stream i depends
     only on (seed, i), never on scheduling or on [jobs] *)
  let base = Mitos_util.Rng.create seed in
  let xs = Array.of_list xs in
  let rngs = Array.map (fun _ -> Mitos_util.Rng.split base) xs in
  let size = Array.length xs in
  if size = 0 then []
  else begin
    let chunk = resolve_chunk chunk ~jobs:pool.jobs ~size in
    let results = Array.make size None in
    run_batch pool ~chunk ~size (fun i ->
        results.(i) <- Some (f ~rng:rngs.(i) xs.(i)));
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let map_opt ?chunk pool ~f xs =
  match pool with None -> List.map f xs | Some pool -> map ?chunk pool ~f xs

let run_seq _pool f = f ()

let shutdown pool =
  Mutex.lock pool.submit;
  Mutex.lock pool.mutex;
  let already = pool.stopping in
  pool.stopping <- true;
  if not already then Condition.broadcast pool.have_work;
  Mutex.unlock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.submit;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
