(** Compact binary serialization used by the trace recorder.

    Values are written with LEB128-style varints (zigzag for signed
    ints), so traces of mostly-small integers stay small. Decoding
    raises [Malformed] on truncated or corrupt input. *)

exception Malformed of string

(** Encoder: appends to an internal buffer. *)
module Enc : sig
  type t

  val create : ?initial_size:int -> unit -> t
  val uint : t -> int -> unit
  (** Non-negative varint; raises [Invalid_argument] on negatives. *)

  val int : t -> int -> unit
  (** Zigzag-encoded signed varint. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val option : t -> ('a -> unit) -> 'a option -> unit
  (** [option t f v] writes a presence bit then [f] on the payload. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  val array : t -> ('a -> unit) -> 'a array -> unit
  val contents : t -> string
  val length : t -> int
end

(** Decoder: consumes a string left to right. *)
module Dec : sig
  type t

  val of_string : string -> t
  val uint : t -> int
  val int : t -> int
  val bool : t -> bool
  val float : t -> float
  val string : t -> string
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array

  val pos : t -> int
  (** Current read offset in bytes — where decoding stands (or where
      it failed, when reading raised [Malformed]). *)

  val at_end : t -> bool
  val expect_end : t -> unit
  (** Raises [Malformed] if bytes remain. *)
end
