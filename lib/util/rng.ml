type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let byte t = Char.chr (int t 256)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (byte t)
  done;
  b

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. Float.max 0.0 w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Rng.weighted: no positive weight";
  let x = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | [ (_, v) ] -> v
    | (w, v) :: rest ->
      let acc = acc +. Float.max 0.0 w in
      if x < acc then v else go acc rest
  in
  go 0.0 choices

let pareto t ~alpha ~xm =
  if alpha <= 0.0 then invalid_arg "Rng.pareto: alpha must be positive";
  if xm <= 0.0 then invalid_arg "Rng.pareto: xm must be positive";
  let u = 1.0 -. float t 1.0 in
  xm /. (u ** (1.0 /. alpha))
