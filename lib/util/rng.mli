(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every workload, experiment and test is reproducible from a seed.
    The generator is splitmix64 (Steele et al.), which is fast, has a
    64-bit state, and supports cheap splitting for independent
    substreams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the state so the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator, usable for parallel substreams. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples an exponential with the given rate. *)

val pareto : t -> alpha:float -> xm:float -> float
(** [pareto t ~alpha ~xm] samples a Pareto with shape [alpha] and
    scale (minimum) [xm] by inversion — the heavy-tailed inter-arrival
    distribution the chaos tenant generator uses for bursty open-loop
    traffic. Mean is [xm * alpha / (alpha - 1)] for [alpha > 1].
    Raises [Invalid_argument] unless both are positive. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success
    of a Bernoulli([p]) sequence; [p] must be in (0, 1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val byte : t -> char
(** Uniform byte. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is a fresh buffer of [n] uniform bytes. *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted t choices] samples proportionally to the (positive)
    weights. Raises [Invalid_argument] on an empty or all-zero list. *)
