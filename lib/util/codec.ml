exception Malformed of string

module Enc = struct
  type t = Buffer.t

  let create ?(initial_size = 256) () = Buffer.create initial_size

  let uint t n =
    if n < 0 then invalid_arg "Codec.Enc.uint: negative";
    let rec go n =
      if n < 0x80 then Buffer.add_char t (Char.chr n)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (n land 0x7F)));
        go (n lsr 7)
      end
    in
    go n

  let int t n =
    (* zigzag: maps small-magnitude signed ints to small unsigned ints *)
    let z = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
    uint t (z land max_int)

  let bool t b = Buffer.add_char t (if b then '\001' else '\000')

  let float t f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      Buffer.add_char t
        (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
    done

  let string t s =
    uint t (String.length s);
    Buffer.add_string t s

  let option t f = function
    | None -> bool t false
    | Some v ->
      bool t true;
      f v

  let list t f l =
    uint t (List.length l);
    List.iter f l

  let array t f a =
    uint t (Array.length a);
    Array.iter f a

  let contents = Buffer.contents
  let length = Buffer.length
end

module Dec = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let byte t =
    if t.pos >= String.length t.data then raise (Malformed "unexpected end of input");
    let c = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let uint t =
    let rec go shift acc =
      if shift > Sys.int_size then raise (Malformed "varint too long");
      let b = byte t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int t =
    let z = uint t in
    (z lsr 1) lxor (-(z land 1))

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | b -> raise (Malformed (Printf.sprintf "invalid bool byte %d" b))

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let n = uint t in
    if t.pos + n > String.length t.data then raise (Malformed "string overruns input");
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let option t f = if bool t then Some (f t) else None

  let list t f =
    let n = uint t in
    List.init n (fun _ -> f t)

  let array t f =
    let n = uint t in
    Array.init n (fun _ -> f t)

  let pos t = t.pos
  let at_end t = t.pos >= String.length t.data

  let expect_end t =
    if not (at_end t) then
      raise (Malformed (Printf.sprintf "%d trailing bytes" (String.length t.data - t.pos)))
end
