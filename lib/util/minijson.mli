(** A minimal JSON reader.

    The repo has no JSON dependency by design: every exporter renders
    its own deterministic text. The consumers that must {e read} JSON
    back — [mitos-cli bench compare] diffing two [BENCH_decisions.json]
    files, tests asserting on [/snapshot.json] payloads — go through
    this parser. It accepts standard JSON (RFC 8259 structure; numbers
    via [float_of_string], strings with the escapes our own writers
    emit plus [\uXXXX] for the BMP) and is not streaming: inputs are
    whole small documents. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in document order *)

exception Parse_error of string
(** Carries a one-line message with the byte offset. *)

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val parse_result : string -> (t, string) result

(** {1 Access helpers} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val path : string list -> t -> t option
(** Nested {!member}: [path ["a"; "b"] j] is [j.a.b]. *)

val to_float : t -> float option
(** [Num]s only. *)

val to_string_opt : t -> string option
(** [Str]s only. *)

(** {1 Rendering}

    The one canonical writer for consumers that build a document as a
    {!t} (the bench-JSON merge, the chaos report). Deterministic:
    2-space indentation, fields in list order, numbers formatted
    exactly as [Registry.fmt_value] does — so a parse → render
    round-trip of our own output is byte-identical. *)

val render : ?indent:int -> t -> string
(** Render without a trailing newline. [indent] is the current left
    margin (default 0); nested structures indent by 2. *)

val render_number : float -> string
(** [NaN]/[+Inf]/[-Inf] spelled out, integers with no fraction,
    everything else [%.9g]. *)

val render_string : string -> string
(** Quoted and escaped (quote, backslash, newline, tab, [\uXXXX] for
    other control bytes). *)
