(** Time-indexed sample accumulation for the figure reproductions and
    the live telemetry stack.

    A series is a bounded sequence of [(time, value)] samples with
    helpers to downsample for display and to summarize tails, matching
    how the paper plots marginal costs and decisions over replay time
    (Fig. 7). Retention is a ring: at most [capacity] samples are kept
    (oldest evicted first), and samples older than the newest sample's
    time minus [max_age] are dropped — the newest sample itself is
    never evicted. The defaults (65536 samples, no age bound) are
    generous enough that figure-reproduction runs see append-only
    behaviour, while long-lived servers stop growing without bound. *)

type t

val create : ?name:string -> ?capacity:int -> ?max_age:float -> unit -> t
(** [capacity] defaults to 65536 samples, [max_age] to [infinity]
    (no age-based eviction). Raises [Invalid_argument] on a
    non-positive capacity or max_age. *)

val name : t -> string
val capacity : t -> int
val max_age : t -> float

val add : t -> float -> float -> unit
(** [add t time value] appends a sample, evicting from the front when
    retention says so; times should be non-decreasing but this is not
    enforced (age eviction assumes the newest sample has the largest
    time). *)

val length : t -> int
(** Retained samples (drops excluded). *)

val dropped : t -> int
(** Samples evicted by capacity or age so far. *)

val times : t -> float array
val values : t -> float array
val last : t -> (float * float) option
val iter : t -> (float -> float -> unit) -> unit
(** Oldest retained sample first. *)

val get : t -> int -> float * float
(** [get t i] is the [i]-th retained sample, oldest first; the caller
    must keep [0 <= i < length t]. *)

val first_at_or_after : t -> float -> int
(** Smallest retained index [i] with [fst (get t i) >= time], or
    [length t] when every retained sample is older — binary search, so
    window scans cost the window, not the retention. *)

val downsample : t -> int -> (float * float) array
(** [downsample t k] returns at most [k] samples spread evenly over the
    retained series (bucket means of the values, bucket-end times). *)

val window_mean : t -> from_time:float -> float
(** Mean of retained values with time >= [from_time]; 0 if none. *)

val sparkline : t -> int -> string
(** Unicode sparkline of at most [width] buckets; handy in console
    reports. *)
