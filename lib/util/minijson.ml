type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_body st =
  (* opening quote already consumed *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail st "bad \\u escape"
          in
          st.pos <- st.pos + 4;
          (* encode the BMP code point as UTF-8 (surrogates land
             verbatim — our writers never emit them) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf
              (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail st "bad escape");
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        expect st '"';
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, value) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, value) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (value :: acc)
        | Some ']' ->
          advance st;
          List.rev (value :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '"' ->
    advance st;
    Str (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage";
  v

let parse_result src =
  match parse src with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let path keys j =
  List.fold_left
    (fun acc key -> Option.bind acc (member key))
    (Some j) keys

let to_float = function Num v -> Some v | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None

(* -- rendering ---------------------------------------------------------- *)

(* Matches Registry.fmt_value so numbers survive a render -> parse ->
   render round-trip byte-identically across every writer in the
   repo. *)
let render_number v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec render ?(indent = 0) v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> render_number f
  | Str s -> render_string s
  | List items ->
    if items = [] then "[]"
    else
      "[\n"
      ^ String.concat ",\n"
          (List.map
             (fun item -> pad (indent + 2) ^ render ~indent:(indent + 2) item)
             items)
      ^ "\n" ^ pad indent ^ "]"
  | Obj fields ->
    if fields = [] then "{}"
    else
      "{\n"
      ^ String.concat ",\n"
          (List.map
             (fun (k, item) ->
               pad (indent + 2) ^ render_string k ^ ": "
               ^ render ~indent:(indent + 2) item)
             fields)
      ^ "\n" ^ pad indent ^ "}"
