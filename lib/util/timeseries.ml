(* Ring storage: [times]/[values] hold [len] samples starting at
   logical index 0 = physical [start], wrapping modulo the physical
   size. The physical arrays grow geometrically up to [capacity];
   beyond that the oldest sample is overwritten. Age eviction drops
   samples older than [newest - max_age] from the front, but never the
   newest sample itself. *)
type t = {
  series_name : string;
  capacity : int;
  max_age : float;
  mutable times : float array;
  mutable values : float array;
  mutable start : int;  (* physical index of logical sample 0 *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 65536

let create ?(name = "") ?(capacity = default_capacity) ?(max_age = infinity) () =
  if capacity < 1 then invalid_arg "Timeseries.create: non-positive capacity";
  if not (max_age > 0.0) then
    invalid_arg "Timeseries.create: non-positive max_age";
  let phys = min 16 capacity in
  {
    series_name = name;
    capacity;
    max_age;
    times = Array.make phys 0.0;
    values = Array.make phys 0.0;
    start = 0;
    len = 0;
    dropped = 0;
  }

let name t = t.series_name
let capacity t = t.capacity
let max_age t = t.max_age
let dropped t = t.dropped

let phys_index t i = (t.start + i) mod Array.length t.times
let get_time t i = t.times.(phys_index t i)
let get_value t i = t.values.(phys_index t i)
let get t i = (get_time t i, get_value t i)

let ensure_capacity t =
  if t.len = Array.length t.times && t.len < t.capacity then begin
    let cap = min (2 * Array.length t.times) t.capacity in
    let grow a =
      let b = Array.make cap 0.0 in
      for i = 0 to t.len - 1 do
        b.(i) <- a.((t.start + i) mod Array.length a)
      done;
      b
    in
    let ts = grow t.times and vs = grow t.values in
    t.times <- ts;
    t.values <- vs;
    t.start <- 0
  end

let drop_oldest t =
  t.start <- (t.start + 1) mod Array.length t.times;
  t.len <- t.len - 1;
  t.dropped <- t.dropped + 1

let add t time value =
  ensure_capacity t;
  if t.len = t.capacity then drop_oldest t;
  let i = phys_index t t.len in
  t.times.(i) <- time;
  t.values.(i) <- value;
  t.len <- t.len + 1;
  if t.max_age < infinity then begin
    let cutoff = time -. t.max_age in
    while t.len > 1 && get_time t 0 < cutoff do
      drop_oldest t
    done
  end

let length t = t.len
let times t = Array.init t.len (fun i -> get_time t i)
let values t = Array.init t.len (fun i -> get_value t i)

let last t = if t.len = 0 then None else Some (get t (t.len - 1))

let iter t f =
  for i = 0 to t.len - 1 do
    f (get_time t i) (get_value t i)
  done

(* Smallest logical index whose time is >= [time]; [len] if none.
   Binary search over the (non-decreasing) retained times. *)
let first_at_or_after t time =
  if t.len = 0 || get_time t (t.len - 1) < time then t.len
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if get_time t mid >= time then hi := mid else lo := mid + 1
    done;
    !lo
  end

let downsample t k =
  if k <= 0 then [||]
  else if t.len <= k then Array.init t.len (fun i -> get t i)
  else begin
    let out = Array.make k (0.0, 0.0) in
    for b = 0 to k - 1 do
      let lo = b * t.len / k in
      let hi = ((b + 1) * t.len / k) - 1 in
      let hi = max lo hi in
      let acc = ref 0.0 in
      for i = lo to hi do
        acc := !acc +. get_value t i
      done;
      out.(b) <- (get_time t hi, !acc /. float_of_int (hi - lo + 1))
    done;
    out
  end

let window_mean t ~from_time =
  let acc = ref 0.0 and n = ref 0 in
  for i = first_at_or_after t from_time to t.len - 1 do
    acc := !acc +. get_value t i;
    incr n
  done;
  if !n = 0 then 0.0 else !acc /. float_of_int !n

let spark_chars = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline t width =
  let samples = downsample t width in
  if Array.length samples = 0 then ""
  else begin
    let vals = Array.map snd samples in
    let lo = Array.fold_left Float.min vals.(0) vals in
    let hi = Array.fold_left Float.max vals.(0) vals in
    let span = hi -. lo in
    let buf = Buffer.create (Array.length vals * 3) in
    Array.iter
      (fun v ->
        let idx =
          if span <= 0.0 then 4
          else
            int_of_float ((v -. lo) /. span *. 8.0)
        in
        let idx = max 0 (min 8 idx) in
        Buffer.add_string buf spark_chars.(idx))
      vals;
    Buffer.contents buf
  end
