(** Blame attribution: join the decision flight recorder's audit log
    against ground-truth oracle runs and name the decision record(s)
    — or provenance evictions — behind every over- and under-tainted
    byte.

    The audited run executes [Policies.mitos params] with the
    [Mitos.Decision] audit probe installed; two oracle runs bound the
    truth from both sides. [propagate-all] is the reachability upper
    bound — taint it produces that the audited run lacks is
    {e under}-tainting, attributed to Block records and evictions of
    the missing tag. [faros] (direct flows only) is the lower bound —
    audited taint beyond it arrived through an indirect-flow decision
    and is accounted as {e over}, attributed to the Propagate records
    that admitted the tag. A byte with no matching record is reported
    UNATTRIBUTED — on the litmus suite the attribution is complete
    (asserted by the test suite), because every indirect propagation
    difference passes through an audited Alg. 2 call.

    The audited run is sequential (the audit probe is module-global);
    [pool] only fans out the oracle runs, so summaries and the audit
    JSONL are byte-identical at every [--jobs] degree. *)

type direction = Over | Under

val direction_to_string : direction -> string

type finding = {
  case : string;  (** litmus case or workload name *)
  addr : int;
  tag : string;
  direction : direction;
  blamed : int list;  (** audit record ids, ascending; [] = unattributed *)
}

type summary = {
  findings : finding list;  (** over first, then under, address order *)
  attributed : int;  (** findings with at least one blamed record *)
  total : int;
  audit : Mitos_obs.Audit.t;  (** the recorder, for JSONL/flow-graph reuse *)
}

val litmus :
  ?capacity:int ->
  ?sink:(string -> unit) ->
  ?pool:Mitos_parallel.Pool.t ->
  Mitos.Params.t ->
  summary
(** Run the full litmus suite audited under [Policies.mitos params]
    and attribute every differing byte. The shared log is segmented
    per case by [Note] records ("case:<name>"), and each case's
    findings join only its own segment. *)

val workload :
  ?capacity:int ->
  ?sink:(string -> unit) ->
  ?pool:Mitos_parallel.Pool.t ->
  ?config:Mitos_dift.Engine.config ->
  ?max_steps:int ->
  name:string ->
  Mitos.Params.t ->
  (unit -> Mitos_workload.Workload.built) ->
  summary
(** Same analysis over a workload. [build] is called three times (the
    audited run and both oracles), so it must return a fresh
    deterministic build each time. *)

val ranked :
  summary -> (direction * string * int * int * int list) list
(** Per-(direction, tag, pc) ranking, most bytes first:
    [(direction, tag, pc, bytes, record ids)] where [bytes] counts the
    findings whose blame includes a decision record at that pc. *)

val report : title:string -> summary -> Report.section
(** Render the summary: coverage line, per-finding table (capped),
    and the ranked per-tag/per-pc table. *)
