open Mitos_dift
open Mitos_tag
module Workload = Mitos_workload.Workload
module Table = Mitos_util.Table

let u_values = [ 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0 ]

type point = {
  u_net : float;
  net_propagated : int;
  net_blocked : int;
  export_propagated : int;
  export_blocked : int;
}

let sweep ?pool built trace =
  Mitos_parallel.Pool.map_opt pool
    ~f:(fun u_net ->
      let params = Calib.sensitivity_params ~tau:1.0 ~u_net () in
      let engine = Workload.replay ~policy:(Policies.mitos params) built trace in
      let c = Engine.counters engine in
      let prop ty = c.Engine.per_type_propagated.(Tag_type.to_int ty) in
      let block ty = c.Engine.per_type_blocked.(Tag_type.to_int ty) in
      {
        u_net;
        net_propagated = prop Tag_type.Network;
        net_blocked = block Tag_type.Network;
        export_propagated = prop Tag_type.Export_table;
        export_blocked = block Tag_type.Export_table;
      })
    u_values

let run ?recorded ?pool () =
  let r =
    Report.create ~title:"Fig. 9: u_netflow vs. propagated netflow tags"
  in
  let built, trace =
    match recorded with Some bt -> bt | None -> Fig7.record_netbench ()
  in
  let points = sweep ?pool built trace in
  let reference =
    match List.rev points with
    | last :: _ -> max 1 last.net_propagated
    | [] -> 1
  in
  let t =
    Table.create
      ~header:
        [ "u_netflow"; "netflow% (of u=100)"; "net+"; "net-"; "export+";
          "export-" ]
      ()
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%g" p.u_net;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int p.net_propagated /. float_of_int reference);
          string_of_int p.net_propagated;
          string_of_int p.net_blocked;
          string_of_int p.export_propagated;
          string_of_int p.export_blocked;
        ])
    points;
  Report.table r t;
  Report.text r
    "Shape check vs. paper: netflow propagation increases monotonically \
     with u_netflow; export-table tags are mildly decelerated as the \
     boosted netflow propagation raises memory pollution.";
  Report.finish r
