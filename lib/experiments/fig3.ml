module Table = Mitos_util.Table

let alphas = [ 0.5; 1.0; 1.5; 2.0; 4.0 ]
let betas = [ 2.0; 3.0; 4.0 ]
let ns = List.init 20 (fun i -> float_of_int (i + 1))
let fracs = List.init 20 (fun i -> 0.05 *. float_of_int (i + 1))

let under_series ~alpha =
  List.map (fun n -> (n, Mitos.Cost.phi ~alpha n)) ns

let over_series ~beta = List.map (fun f -> (f, f ** beta)) fracs

let run ?pool () =
  let r = Report.create ~title:"Fig. 3: cost function shapes" in
  Report.text r
    "(a) undertainting kernel phi_alpha(n) = n^(1-a)/(a-1) (log at a=1):";
  let t =
    Table.create
      ~header:("n" :: List.map (fun a -> Printf.sprintf "a=%g" a) alphas)
      ()
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool
       ~f:(fun n ->
         Printf.sprintf "%.0f" n
         :: List.map
              (fun alpha -> Printf.sprintf "%.4f" (Mitos.Cost.phi ~alpha n))
              alphas)
       ns);
  Report.table r t;
  Report.text r
    "(b) overtainting kernel (P/N_R)^beta over the pollution fraction:";
  let t =
    Table.create
      ~header:("P/N_R" :: List.map (fun b -> Printf.sprintf "b=%g" b) betas)
      ()
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool
       ~f:(fun f ->
         Printf.sprintf "%.2f" f
         :: List.map (fun beta -> Printf.sprintf "%.4f" (f ** beta)) betas)
       fracs);
  Report.table r t;
  Report.text r
    "Check: under-cost decreasing in n (negative gradient), over-cost \
     increasing and convex for beta >= 2 - as in the paper's Fig. 3.";
  Report.finish r
