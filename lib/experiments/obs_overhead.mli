(** Instrumentation-overhead benchmark: the engine-replay workload of
    the bench harness run three ways — un-instrumented baseline,
    instrumented against the no-op sink ({!Mitos_obs.Obs.disabled}),
    and fully enabled on the real clock — so the observability layer's
    cost contract (no-op sink within 5% of baseline) is measurable,
    not asserted. *)

type result = {
  records : int;  (** replayed records per repetition *)
  repetitions : int;
  baseline_s : float;  (** best wall time, un-instrumented *)
  disabled_s : float;  (** best wall time, no-op sink *)
  enabled_s : float;  (** best wall time, enabled (real clock) *)
}

val measure :
  ?seed:int -> ?records:int -> ?repetitions:int -> unit -> result
(** Defaults: seed 1, 5000 records, best of 10 repetitions (after one
    warm-up) per mode. *)

val disabled_overhead : result -> float
(** [(disabled - baseline) / baseline]; the ≤ 0.05 contract. *)

val enabled_overhead : result -> float

val run :
  ?seed:int -> ?records:int -> ?repetitions:int -> unit -> Report.section
(** The report the bench harness and [mitos-cli obs-bench] print. *)
