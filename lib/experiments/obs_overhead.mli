(** Instrumentation-overhead benchmark: the engine-replay workload of
    the bench harness run five ways — un-instrumented baseline,
    instrumented against the no-op sink ({!Mitos_obs.Obs.disabled}),
    fully enabled on the real clock, enabled with an attached-but-idle
    {!Mitos_obs.Server} exposition server, and enabled plus the
    {!Mitos_obs.Audit} decision flight recorder — so the
    observability layer's cost contract (no-op sink, audit disabled,
    within 5% of baseline) is measurable, not asserted. The replay
    runs under [Policies.mitos], so the decision hot path (including
    its audit probe check) is part of every mode. *)

type result = {
  records : int;  (** replayed records per repetition *)
  repetitions : int;
  baseline_s : float;  (** best wall time, un-instrumented *)
  disabled_s : float;  (** best wall time, no-op sink *)
  enabled_s : float;  (** best wall time, enabled (real clock) *)
  server_s : float;
      (** best wall time, enabled + idle exposition server attached *)
  audit_s : float;  (** best wall time, enabled + audit recorder *)
  profiled_s : float;
      (** best wall time with the profiler on: enabled obs, a
          background {!Mitos_obs.Runtime} sampler, and one trace
          context minted per record *)
}

val measure :
  ?seed:int -> ?records:int -> ?repetitions:int -> unit -> result
(** Defaults: seed 1, 5000 records, best of 10 repetitions (after one
    warm-up) per mode. *)

val disabled_overhead : result -> float
(** [(disabled - baseline) / baseline]; the ≤ 0.05 contract. *)

val enabled_overhead : result -> float

val server_overhead : result -> float
(** Overhead of having the exposition server attached but idle (its
    domain parked in the accept poll, nothing scraping): the hot path
    must not notice the server — same ≤ 0.05 contract. *)

val audit_overhead : result -> float
(** Overhead of full decision auditing (ring recording on every
    Alg. 1/2 call, eviction hook, per-consult context stamping). *)

val profiled_overhead : result -> float
(** Overhead of the full profiling stack (propagation id minting +
    runtime GC/lock sampling) — informational; the profiler is
    opt-in, so no contract binds it. *)

val contract_ok : result -> bool
(** The ≤ 5% disabled-overhead contract: [disabled_overhead r <= 0.05].
    Rendered as a PASS/FAIL line by {!run}. *)

(** Aggregated shard-lock traffic of one estimator hammer run — the
    [lock_estimator_contention] before/after comparison {!run} prints
    (1 shard vs 4 shards under the same 4-domain publish+global
    load). *)
type estimator_contention = {
  est_shards : int;
  est_wall_s : float;
  est_acquisitions : int;
  est_contended : int;  (** acquisitions that found the lock held *)
  est_wait_ns : int;
}

val measure_estimator_contention :
  ?domains:int -> ?rounds:int -> shards:int -> unit -> estimator_contention
(** Defaults: 4 domains, 25k rounds each of two publishes + two global
    reads, against a fresh [domains * 2]-node estimator. *)

val contended_share : estimator_contention -> float
(** [contended / acquisitions], 0 when idle. *)

val run :
  ?seed:int -> ?records:int -> ?repetitions:int -> unit -> Report.section
(** The report the bench harness and [mitos-cli obs-bench] print. *)
