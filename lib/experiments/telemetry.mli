(** The standard telemetry surface: glue between a running
    engine/obs/audit/health stack and the {!Mitos_obs.Server} routes
    every long-running invocation exposes.

    This module owns three things:

    - the {e route set} — [/metrics], [/healthz], [/snapshot.json],
      [/tracez], [/auditz] — built from whatever parts of the stack
      the caller has ([None] parts degrade to honest placeholders);
    - the {e standard signals} fed to {!Mitos_obs.Health} at every
      {!Mitos_dift.Metrics.attach_sampler} observation (over-taint
      ratio vs. the propagate-all bound, decision-latency p50/p99,
      eviction rate, tag-space occupancy);
    - the {e default SLO rules} over those signals.

    Route payload thunks obey the {!Mitos_obs.Server} hot-path
    contract: they only read (registry exposition under its creation
    mutex, ring snapshots best-effort, engine progress via
    {!Mitos_dift.Engine.progress} — plain field reads). The same
    routes passed to {!Mitos_obs.Server.oneshot} after the run are the
    deterministic offline twin. *)

type source = {
  obs : Mitos_obs.Obs.t;
  health : Mitos_obs.Health.t option;
  audit : Mitos_obs.Audit.t option;
  progress : (unit -> Mitos_dift.Engine.progress) option;
  alerts : Mitos_obs.Alerts.t option;
}

val source :
  ?health:Mitos_obs.Health.t ->
  ?audit:Mitos_obs.Audit.t ->
  ?progress:(unit -> Mitos_dift.Engine.progress) ->
  ?alerts:Mitos_obs.Alerts.t ->
  Mitos_obs.Obs.t ->
  source

val health_verdict : source -> bool * string
(** The composed [/healthz] verdict over both judgment layers: healthy
    iff no {!Mitos_obs.Health} rule is breaching {e and} no
    {!Mitos_obs.Alerts} rule is firing. The body is the verdict line,
    the health [breaching: NAME] lines, the alert
    [firing: NAME severity=SEV] lines, then the health detail — also
    what [mitos-cli serve-decisions] answers health probes with. With
    neither layer attached, a plain ok liveness line. *)

val progress_json : Mitos_dift.Engine.progress -> string
(** One JSON object, canonical field order and number formatting. *)

val snapshot_json : source -> string
(** The [/snapshot.json] body: [{"progress":…,"audit":…,"health":…,
    "alerts":…,"metrics":…}] with [null] for absent parts. *)

val routes : ?last:int -> ?pid:int -> source -> Mitos_obs.Server.route list
(** The standard five routes, in fixed order, with their oneshot file
    names ([metrics.prom], [healthz.txt], [snapshot.json],
    [tracez.jsonl], [auditz.jsonl]). [/tracez] and [/auditz] serve the
    last [last] (default 256) events/records as JSONL; [pid] stamps
    the [/tracez] export's pid field (pass [Unix.getpid ()] on a live
    server so client and server traces concatenate into one Chrome
    timeline), and [/tracez?trace_id=<32-hex>] keeps only the spans of
    one distributed trace — filtered before the tail, so a stitched
    trace survives ring pressure. Without a health watchdog [/healthz]
    is a plain 200 liveness probe; with an alert engine attached the
    [/alerts], [/query] and [/alertz] routes are appended and
    [/healthz] folds alert firing into its verdict
    (see {!health_verdict}). *)

(** {1 Standard signals and rules} *)

val standard_signals :
  ?over_taint_bound:float ->
  obs:Mitos_obs.Obs.t ->
  Mitos_dift.Engine.t ->
  Mitos_dift.Metrics.sample ->
  (string * float) list
(** The signal snapshot for one sampler observation, in fixed order:
    [over_taint_ratio] (sampled tainted bytes over [over_taint_bound]
    — the propagate-all final pollution; omitted unless the bound is
    positive), [decision_p50_ticks]/[decision_p99_ticks] (from the
    engine record-latency histogram in [obs]'s registry),
    [eviction_rate] (evictions per processed record),
    [tag_space_occupancy] (provenance entries over the paper's
    [N_R = R * M_prov]), plus the raw [tainted_bytes] and
    [distinct_tags]. Call from the sampler's [observe] callback — it
    reads shadow state and must stay on the run's domain. *)

val default_rules : Mitos_obs.Health.rule list
(** A conservative default rule set over the standard signals:
    [over_taint_ratio<=1] (a decisioning policy must not exceed the
    propagate-all bound), [eviction_rate<=0.5] and
    [tag_space_occupancy<=0.9] (taint churn sanity). Extend or
    override with [--slo] rules. *)

(** {1 The pilot run}

    The deterministic run behind [mitos-cli serve] and every
    [--listen] flag: record a workload once, sweep the oracle policy
    panel (faros / propagate-all / mitos) over the trace on the pool
    to publish per-policy [mitos_sweep_*] gauges and obtain the
    propagate-all over-taint bound, then set up an audited and
    instrumented MITOS replay of the same trace on the calling domain
    whose sampler feeds {!standard_signals} into a health watchdog.

    Everything that writes to the obs context happens on the calling
    domain under the supplied clock (logical by default), so a
    {!Mitos_obs.Server.oneshot} of {!routes} after {!pilot.replay} is
    byte-identical across [--jobs] settings — the sweep workers never
    touch the obs context or the global decision probes. *)

type pilot = {
  src : source;  (** health, audit and progress all populated *)
  engine : Mitos_dift.Engine.t;  (** the MITOS replay engine *)
  replay : unit -> unit;
      (** Drive the audited replay (call once). Sets the global
          decision/solver probes for its duration and restores them
          to [None] after, so pooled work that follows cannot race
          the rings. *)
  over_taint_bound : float;  (** propagate-all final tainted bytes *)
}

val pilot :
  ?params:Mitos.Params.t ->
  ?rules:Mitos_obs.Health.rule list ->
  ?window:float ->
  ?clock:Mitos_obs.Obs_clock.t ->
  ?sample_every:int ->
  ?audit_capacity:int ->
  ?pool:Mitos_parallel.Pool.t ->
  build:(unit -> Mitos_workload.Workload.built) ->
  unit ->
  pilot
(** [build] must return a fresh workload per call (it is called once
    per sweep policy, possibly concurrently, plus once for the MITOS
    replay — deterministic workload builders are). [rules] defaults
    to {!default_rules}; [sample_every] (default 256) paces both the
    engine sampler and the health observations. *)
