(** Taint propagation graph: fold an audit log (plus, optionally, the
    final shadow state's resident provenance) into a bipartite graph
    of tags and decision sites, exported as DOT and JSON.

    Tag nodes carry how often the tag was propagated/blocked and how
    many bytes it occupies at the end of the run; site (pc) nodes
    carry the flow kinds decided there; [tag -> pc] edges count the
    verdicts of that pair, and dashed [tag -> tag] edges count
    provenance evictions (incoming tag displacing the victim).

    All node and edge lists are sorted, and numbers render through the
    canonical formatter, so both exports are byte-deterministic for a
    deterministic run — the same contract as the trace and metrics
    exports. *)

type tag_node = {
  tag : string;
  resident_bytes : int;  (** bytes still carrying the tag at the end *)
  propagated : int;
  blocked : int;
}

type site_node = {
  pc : int;
  flows : string list;  (** flow kinds decided at this site, sorted *)
  decisions : int;
}

type edge = { e_tag : string; e_pc : int; e_propagated : int; e_blocked : int }
type eviction_edge = { incoming : string; victim : string; count : int }

type t = {
  tags : tag_node list;
  sites : site_node list;
  edges : edge list;
  evictions : eviction_edge list;
}

val build : ?shadow:Mitos_tag.Shadow.t -> Mitos_obs.Audit.record array -> t
(** Fold the records (e.g. [Audit.records recorder]); [shadow]
    contributes the resident byte counts. *)

val to_dot : t -> string
(** Graphviz source ([digraph mitos_taint]). *)

val to_json : t -> string
(** One JSON object: [{"schema":"mitos-flowgraph/1","tags":[...],
    "sites":[...],"edges":[...],"evictions":[...]}]. *)
