(** Fig. 9: tag-type importance (u_netflow sweep).

    The network benchmark replayed for u_netflow ∈ {1..100} with the
    remaining weights fixed at 1. We report the number of netflow tags
    propagated at indirect flows, normalized by the u_netflow = 100
    value (the paper's y-axis), and the export-table propagation count
    to show the mild deceleration the paper describes (boosting one
    type raises pollution and so back-pressures the others). *)

val u_values : float list

type point = {
  u_net : float;
  net_propagated : int;
  net_blocked : int;
  export_propagated : int;
  export_blocked : int;
}

val sweep :
  ?pool:Mitos_parallel.Pool.t ->
  Mitos_workload.Workload.built ->
  Mitos_replay.Trace.t ->
  point list
(** One replay per u_netflow; [pool] runs them in parallel, results
    stay in sweep order. *)

val run :
  ?recorded:Mitos_workload.Workload.built * Mitos_replay.Trace.t ->
  ?pool:Mitos_parallel.Pool.t ->
  unit ->
  Report.section
