(** Ablations for the design choices DESIGN.md calls out.

    A — provenance-list eviction (paper §VI defers "scheduling
    management in the lists" to future work; we quantify FIFO vs. LRU
    vs. reject-newcomer on the attack's detection and footprint).

    B — Algorithm 2's line 9 (re-evaluating the pollution term after
    each accepted tag) on vs. off.

    C — distributed staleness: MITOS nodes deciding against a shared
    pollution estimate synchronized every k steps (the paper's
    "globally available variable" in a large distributed system).

    D — the solution-quality check: the online greedy rule vs. the
    offline KKT optimum of the relaxed problem on a static tag
    population.

    E — fixed τ settings vs. the {!Mitos.Adaptive} controller steering
    τ to a pollution budget.

    F — the per-type pollution weight o_t, the dual of Fig. 9's
    u_t sweep.

    G — pollution-visibility topologies: global scalar vs ring / star /
    isolated gossip neighbourhoods. *)

val eviction : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
val recompute : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
val staleness : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
val solution_quality : unit -> Report.section
val adaptive : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
val pollution_weights : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
val topology : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section

val run_all : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section list
(** Sections run in order; each section's configuration grid fans out
    on [pool]. Output is byte-identical to the sequential run. *)
