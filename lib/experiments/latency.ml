open Mitos_dift
open Mitos_tag
module Attack = Mitos_workload.Attack
module Workload = Mitos_workload.Workload
module Table = Mitos_util.Table

type row = {
  variant : Attack.variant;
  total_steps : int;
  alarm_step : (string * int option) list;
}

let policies_under_test () =
  [
    ("faros", Policies.faros, false);
    ("minos-width", Policies.minos_width, false);
    ("mitos", Calib.mitos_all_flows Calib.attack_params, true);
    ("propagate-all", Policies.propagate_all, false);
  ]

let run_variant variant =
  let total_steps = ref 0 in
  let alarm_step =
    List.map
      (fun (name, policy, route_direct) ->
        let built = Attack.build variant ~seed:Calib.attack_seed () in
        let config =
          if route_direct then Calib.attack_engine_config
          else Engine.default_config
        in
        let engine = Workload.engine_of ~config ~policy built in
        Engine.watch_confluence engine Tag_type.Network Tag_type.Export_table;
        Engine.attach engine (Workload.machine_of built);
        total_steps := Engine.run engine;
        (name, Engine.first_alert_step engine))
      (policies_under_test ())
  in
  { variant; total_steps = !total_steps; alarm_step }

let run ?pool () =
  let r =
    Report.create
      ~title:
        "Detection latency: first netflow+export-table alarm (instruction \
         step)"
  in
  let names = List.map (fun (n, _, _) -> n) (policies_under_test ()) in
  let t = Table.create ~header:(("shell" :: names) @ [ "run length" ]) () in
  let rows =
    Mitos_parallel.Pool.map_opt pool
      ~f:(fun variant -> (variant, run_variant variant))
      Attack.all_variants
  in
  List.iter
    (fun (variant, row) ->
      Table.add_row t
        ((Attack.variant_name variant
         :: List.map
              (fun name ->
                match List.assoc name row.alarm_step with
                | Some step -> string_of_int step
                | None -> "never")
              names)
        @ [ string_of_int row.total_steps ]))
    rows;
  Report.table r t;
  Report.text r
    "All policies that detect at all alarm at the reflective-load step \
     (the kernel export mark is what completes the signature), so the \
     operative difference is detect-vs-miss: the substitution decoders \
     blind the direct-flow-only baseline entirely, while MITOS preserves \
     the netflow taint through the decode and fires.";
  Report.finish r
