module Obs = Mitos_obs.Obs
module Server = Mitos_obs.Server
module Health = Mitos_obs.Health
module Alerts = Mitos_obs.Alerts
module Audit = Mitos_obs.Audit
module Registry = Mitos_obs.Registry
module Engine = Mitos_dift.Engine
module Metrics = Mitos_dift.Metrics
module Shadow = Mitos_tag.Shadow

type source = {
  obs : Obs.t;
  health : Health.t option;
  audit : Audit.t option;
  progress : (unit -> Engine.progress) option;
  alerts : Alerts.t option;
}

let source ?health ?audit ?progress ?alerts obs =
  { obs; health; audit; progress; alerts }

let progress_json (p : Engine.progress) =
  Printf.sprintf
    "{\"step\":%d,\"pc\":%d,\"direct_events\":%d,\"indirect_events\":%d,\
     \"dfp_propagated\":%d,\"ifp_propagated\":%d,\"ifp_blocked\":%d,\
     \"shadow_ops\":%d,\"evictions\":%d,\"open_scopes\":%d,\
     \"source_bytes\":%d,\"sink_tainted_bytes\":%d}"
    p.prog_step p.prog_pc p.prog_direct_events p.prog_indirect_events
    p.prog_dfp_propagated p.prog_ifp_propagated p.prog_ifp_blocked
    p.prog_shadow_ops p.prog_evictions p.prog_open_scopes
    p.prog_source_bytes p.prog_sink_tainted_bytes

let audit_json recorder =
  Printf.sprintf "{\"length\":%d,\"dropped\":%d,\"next_id\":%d}"
    (Audit.length recorder) (Audit.dropped recorder) (Audit.next_id recorder)

let snapshot_json t =
  let opt f = function None -> "null" | Some x -> f x in
  Printf.sprintf
    "{\"progress\":%s,\"audit\":%s,\"health\":%s,\"alerts\":%s,\"metrics\":%s}"
    (opt (fun thunk -> progress_json (thunk ())) t.progress)
    (opt audit_json t.audit)
    (opt Health.to_json t.health)
    (opt Alerts.to_json t.alerts)
    (Obs.metrics_json t.obs)

(* Last [n] lines of a JSONL payload (rings are bounded, but live
   scrapers want the tail, not a 64k-event dump). *)
let last_lines n s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> l <> "") lines in
  let len = List.length lines in
  let tail =
    if len <= n then lines else List.filteri (fun i _ -> i >= len - n) lines
  in
  match tail with [] -> "" | _ -> String.concat "\n" tail ^ "\n"

(* One verdict over both judgment layers: the Health watchdog's
   current breaches AND the burn-rate alert engine's firing set. The
   body keeps the Health.render shape (verdict, then attribution
   lines, then detail) with the [firing: NAME severity=SEV] lines
   spliced in after the breaching lines, so existing probes that grep
   the first line keep working and watch/Fleet can attribute either
   kind of failure from the body alone. *)
let health_verdict t =
  match (t.health, t.alerts) with
  | None, None -> (true, "status: ok (no SLO rules attached)\n")
  | health, alerts ->
    let health_ok =
      match health with None -> true | Some h -> Health.healthy h
    in
    let alerts_ok =
      match alerts with None -> true | Some a -> not (Alerts.any_firing a)
    in
    let ok = health_ok && alerts_ok in
    let body =
      (if ok then "status: ok\n" else "status: breach\n")
      ^ (match health with None -> "" | Some h -> Health.breaching_lines h)
      ^ (match alerts with None -> "" | Some a -> Alerts.render_firing a)
      ^ (match health with None -> "" | Some h -> Health.render_detail h)
    in
    (ok, body)

let healthz_payload t () =
  let ok, body = health_verdict t in
  Server.text ~status:(if ok then 200 else 503) body

(* Keep only lines mentioning the given trace id. Matching is textual
   on the JSONL — ids are validated hex, so the quoted-arg form cannot
   appear by accident. The filter runs before the tail so a full trace
   survives even when newer unrelated spans crowd the ring. *)
let filter_trace ~trace_id s =
  let needle = Printf.sprintf "\"trace_id\":\"%s\"" trace_id in
  let contains line =
    let nl = String.length needle and ll = String.length line in
    let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
    go 0
  in
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "" && contains l)
  |> (function [] -> "" | lines -> String.concat "\n" lines ^ "\n")

let tracez_payload ?pid t ~last query =
  let jsonl = Mitos_obs.Chrome_trace.to_jsonl ?pid (Obs.tracer t.obs) in
  match List.assoc_opt "trace_id" query with
  | Some trace_id when trace_id <> "" ->
    Server.text (last_lines last (filter_trace ~trace_id jsonl))
  | Some _ | None -> Server.text (last_lines last jsonl)

let routes ?(last = 256) ?pid t =
  [
    Server.route ~file:"metrics.prom"
      ~describe:"Prometheus exposition (registry)" "/metrics" (fun () ->
        Server.prometheus (Obs.prometheus t.obs));
    Server.route ~file:"healthz.txt" ~describe:"liveness + SLO verdict"
      "/healthz" (healthz_payload t);
    Server.route ~file:"snapshot.json"
      ~describe:"registry + engine progress + audit + health" "/snapshot.json"
      (fun () -> Server.json (snapshot_json t));
    Server.route_q ~file:"tracez.jsonl"
      ~describe:"trace ring tail (Chrome-trace JSONL); ?trace_id= filters"
      "/tracez"
      (tracez_payload ?pid t ~last);
    Server.route ~file:"auditz.jsonl" ~describe:"audit ring tail (JSONL)"
      "/auditz" (fun () ->
        match t.audit with
        | None -> Server.text "no audit recorder attached\n"
        | Some recorder -> Server.text (last_lines last (Audit.to_jsonl recorder)));
  ]
  @ (match t.alerts with None -> [] | Some a -> Alerts.routes a)

(* -- Standard signals ------------------------------------------------ *)

let standard_signals ?over_taint_bound ~obs engine (s : Metrics.sample) =
  let c = Engine.counters engine in
  let shadow = Engine.shadow engine in
  let latency =
    Registry.histogram (Obs.registry obs) ~lo:1.0 ~growth:2.0 ~buckets:32
      "mitos_engine_record_latency_ticks"
  in
  let over_taint =
    match over_taint_bound with
    | Some bound when bound > 0.0 ->
      [ ("over_taint_ratio", float_of_int s.sampled_tainted /. bound) ]
    | Some _ | None -> []
  in
  (* per-shard occupancy of the sharded shadow store, as bounded-
     cardinality gauges (one label value per shard) plus a single
     max/mean imbalance signal for SLOs *)
  let occ = Shadow.shard_occupancy shadow in
  if Array.length occ <= 64 then
    Array.iteri
      (fun i n ->
        Registry.set_gauge
          (Registry.gauge (Obs.registry obs)
             ~help:"tainted bytes per shadow-store shard"
             ~labels:[ ("shard", string_of_int i) ]
             "mitos_shadow_shard_occupancy")
          (float_of_int n))
      occ;
  let shard_imbalance =
    let total = Array.fold_left ( + ) 0 occ in
    if total = 0 || Array.length occ <= 1 then 1.0
    else
      float_of_int (Array.fold_left max 0 occ)
      /. (float_of_int total /. float_of_int (Array.length occ))
  in
  over_taint
  @ [
      ("shadow_shard_imbalance", shard_imbalance);
      ("decision_p50_ticks", Mitos_obs.Histogram.quantile latency 0.5);
      ("decision_p99_ticks", Mitos_obs.Histogram.quantile latency 0.99);
      ( "eviction_rate",
        float_of_int c.evictions /. float_of_int (max 1 c.steps) );
      ( "tag_space_occupancy",
        Shadow.pollution shadow ~o:(fun _ -> 1.0) );
      ("tainted_bytes", float_of_int s.sampled_tainted);
      ("distinct_tags", float_of_int s.sampled_distinct);
    ]

let default_rules =
  [
    Health.rule ~signal:"over_taint_ratio" ~cmp:Health.Le ~bound:1.0 ();
    Health.rule ~signal:"eviction_rate" ~cmp:Health.Le ~bound:0.5 ();
    Health.rule ~signal:"tag_space_occupancy" ~cmp:Health.Le ~bound:0.9 ();
  ]

(* -- The pilot run --------------------------------------------------- *)

module Workload = Mitos_workload.Workload
module Policies = Mitos_dift.Policies
module Driver = Mitos_replay.Driver

type pilot = {
  src : source;
  engine : Engine.t;
  replay : unit -> unit;
  over_taint_bound : float;
}

let sweep_policies params =
  [
    ("faros", Policies.faros);
    ("propagate-all", Policies.propagate_all);
    ("mitos", Policies.mitos params);
  ]

let pilot ?params ?rules ?(window = 0.0) ?clock ?(sample_every = 256)
    ?(audit_capacity = 65536) ?pool ~build () =
  let params =
    match params with Some p -> p | None -> Calib.sensitivity_params ()
  in
  let clock =
    match clock with Some c -> c | None -> Mitos_obs.Obs_clock.logical ()
  in
  let obs = Obs.create ~clock () in
  let registry = Obs.registry obs in
  let trace = Workload.record (build ()) in
  (* Oracle-panel sweep on the pool. Workers replay un-instrumented
     (no obs, probes unset), so nothing they do can perturb the obs
     context — the determinism across --jobs hinges on this. *)
  let summaries =
    Mitos_parallel.Pool.map_opt pool
      ~f:(fun (name, policy) ->
        (name, Metrics.of_engine (Workload.replay ~policy (build ()) trace)))
      (sweep_policies params)
  in
  List.iter
    (fun (name, (s : Metrics.summary)) ->
      let g metric v =
        Registry.set_gauge
          (Registry.gauge registry ~labels:[ ("policy", name) ] metric)
          v
      in
      g "mitos_sweep_tainted_bytes" (float_of_int s.tainted_bytes);
      g "mitos_sweep_shadow_ops" (float_of_int s.shadow_ops);
      g "mitos_sweep_ifp_propagated" (float_of_int s.ifp_propagated);
      g "mitos_sweep_ifp_blocked" (float_of_int s.ifp_blocked))
    summaries;
  let over_taint_bound =
    match List.assoc_opt "propagate-all" summaries with
    | Some s -> float_of_int s.Metrics.tainted_bytes
    | None -> 0.0
  in
  Registry.set_gauge
    (Registry.gauge registry ~help:"propagate-all final tainted bytes"
       "mitos_sweep_over_taint_bound")
    over_taint_bound;
  let rules = match rules with Some r -> r | None -> default_rules in
  let health = Health.create ~window ~rules () in
  Health.link_tracer health (Obs.tracer obs);
  let audit = Audit.create ~capacity:audit_capacity () in
  let engine_cell = ref None in
  let observe (s : Metrics.sample) =
    match !engine_cell with
    | None -> ()
    | Some engine ->
      Health.observe health ~at:(float_of_int s.Metrics.at_step)
        (standard_signals ~over_taint_bound ~obs engine s)
  in
  let engine =
    Workload.replay_engine ~obs ~sample_every ~observe ~audit
      ~policy:(Policies.mitos params) (build ()) trace
  in
  engine_cell := Some engine;
  let replay () =
    Mitos.Decision.set_obs (Some obs);
    Mitos.Solver.set_obs (Some obs);
    Mitos.Decision.set_audit (Some audit);
    Fun.protect
      ~finally:(fun () ->
        Mitos.Decision.set_audit None;
        Mitos.Decision.set_obs None;
        Mitos.Solver.set_obs None)
      (fun () ->
        ignore (Driver.run ~obs trace ~f:(Engine.process_record engine)))
  in
  let src =
    source ~health ~audit
      ~progress:(fun () -> Engine.progress engine)
      obs
  in
  { src; engine; replay; over_taint_bound }
