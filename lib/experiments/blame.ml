open Mitos_tag
open Mitos_dift
module Audit = Mitos_obs.Audit
module Table = Mitos_util.Table
module Pool = Mitos_parallel.Pool
module W = Mitos_workload

type direction = Over | Under

let direction_to_string = function Over -> "over" | Under -> "under"

type finding = {
  case : string;
  addr : int;
  tag : string;
  direction : direction;
  blamed : int list;
}

type summary = {
  findings : finding list;
  attributed : int;
  total : int;
  audit : Audit.t;
}

(* -- taint sets ------------------------------------------------------ *)

(* The final memory taint as a sorted (addr, tag) set; registers are
   transient scratch state and not part of the over/under accounting
   (matching how Validation and the paper count tainted bytes). *)
let taint_set shadow =
  let acc = ref [] in
  Shadow.iter_tainted shadow (fun addr tags ->
      List.iter (fun tag -> acc := (addr, Tag.to_string tag) :: !acc) tags);
  List.sort_uniq compare !acc

let set_diff a b =
  let in_b = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace in_b x ()) b;
  List.filter (fun x -> not (Hashtbl.mem in_b x)) a

(* -- attribution index ---------------------------------------------- *)

(* Per audit-log segment: which record ids blocked / propagated /
   evicted each tag. Decision records carry the per-tag verdicts;
   Eviction records explain taint removed behind the policy's back;
   Selection and Note records carry no per-tag evidence beyond what
   the Decision records already state. *)
type index = {
  blocked : (string, int list) Hashtbl.t;  (* ids, newest first *)
  propagated : (string, int list) Hashtbl.t;
  evicted : (string, int list) Hashtbl.t;
}

let index_add tbl tag id =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl tag) in
  match prev with
  | last :: _ when last = id -> ()
  | _ -> Hashtbl.replace tbl tag (id :: prev)

let index_segment records ~lo ~hi =
  let idx =
    {
      blocked = Hashtbl.create 16;
      propagated = Hashtbl.create 16;
      evicted = Hashtbl.create 16;
    }
  in
  Array.iter
    (fun (r : Audit.record) ->
      if r.id >= lo && r.id < hi then
        match r.body with
        | Audit.Decision { tags; _ } ->
          List.iter
            (fun (td : Audit.tag_decision) ->
              match td.verdict with
              | Audit.Propagate -> index_add idx.propagated td.tag r.id
              | Audit.Block -> index_add idx.blocked td.tag r.id)
            tags
        | Audit.Eviction { victim; _ } -> index_add idx.evicted victim r.id
        | Audit.Selection _ | Audit.Note _ -> ())
    records;
  idx

let ids_for idx direction tag =
  let get tbl = Option.value ~default:[] (Hashtbl.find_opt tbl tag) in
  let ids =
    match direction with
    | Under -> get idx.blocked @ get idx.evicted
    | Over -> get idx.propagated
  in
  List.sort_uniq Int.compare ids

(* One case/workload segment: diff the audited run's final taint
   against the two oracles and attribute each differing byte.

   Ground truth bounds: [full] (propagate-all) is the reachability
   upper bound — taint present there but missing from the audited run
   is {e under}-tainting; [direct] (faros) is the direct-flow lower
   bound — taint beyond it arrived through an indirect-flow decision
   and is accounted as {e over} (each such byte must trace back to a
   Propagate record, which is exactly the explainability contract). *)
let findings_of_segment ~case ~idx ~actual ~full ~direct =
  let under =
    set_diff full actual
    |> List.map (fun (addr, tag) ->
           { case; addr; tag; direction = Under; blamed = ids_for idx Under tag })
  in
  let over =
    set_diff actual direct
    |> List.map (fun (addr, tag) ->
           { case; addr; tag; direction = Over; blamed = ids_for idx Over tag })
  in
  over @ under

let summarize audit findings =
  {
    findings;
    attributed = List.length (List.filter (fun f -> f.blamed <> []) findings);
    total = List.length findings;
    audit;
  }

(* -- litmus ---------------------------------------------------------- *)

let litmus ?(capacity = 65536) ?sink ?pool params =
  let audit = Audit.create ~capacity ?sink () in
  let n = List.length Litmus.cases in
  (* the audited run is sequential (the Decision probe is global);
     per-case segments are delimited by the note records *)
  let bounds = Array.make (n + 1) 0 in
  let idx = ref 0 in
  let instrument engine =
    let i = !idx in
    incr idx;
    bounds.(i) <- Audit.next_id audit;
    Audit.record_note audit
      ("case:" ^ (List.nth Litmus.cases i).Litmus.case_name);
    Engine.instrument ~audit engine Mitos_obs.Obs.disabled
  in
  Mitos.Decision.set_audit (Some audit);
  let details =
    Fun.protect
      ~finally:(fun () -> Mitos.Decision.set_audit None)
      (fun () -> Litmus.run_detailed ~instrument (Policies.mitos params))
  in
  bounds.(n) <- Audit.next_id audit;
  let oracles =
    Pool.map_opt pool
      ~f:(fun policy ->
        List.map
          (fun (d : Litmus.detail) -> taint_set (Engine.shadow d.engine))
          (Litmus.run_detailed policy))
      [ Policies.propagate_all; Policies.faros ]
  in
  let full, direct =
    match oracles with [ f; d ] -> (f, d) | _ -> assert false
  in
  let records = Audit.records audit in
  let findings =
    List.concat
      (List.mapi
         (fun i (d : Litmus.detail) ->
           findings_of_segment ~case:d.Litmus.detail_case.Litmus.case_name
             ~idx:
               (index_segment records ~lo:bounds.(i) ~hi:bounds.(i + 1))
             ~actual:(taint_set (Engine.shadow d.Litmus.engine))
             ~full:(List.nth full i) ~direct:(List.nth direct i))
         details)
  in
  summarize audit findings

(* -- workloads ------------------------------------------------------- *)

let workload ?(capacity = 65536) ?sink ?pool ?config ?max_steps ~name params
    build =
  let audit = Audit.create ~capacity ?sink () in
  Audit.record_note audit ("workload:" ^ name);
  Mitos.Decision.set_audit (Some audit);
  let engine =
    Fun.protect
      ~finally:(fun () -> Mitos.Decision.set_audit None)
      (fun () ->
        W.Workload.run_live ?config ?max_steps ~audit
          ~policy:(Policies.mitos params) (build ()))
  in
  let oracles =
    Pool.map_opt pool
      ~f:(fun policy ->
        taint_set
          (Engine.shadow (W.Workload.run_live ?config ?max_steps ~policy (build ()))))
      [ Policies.propagate_all; Policies.faros ]
  in
  let full, direct =
    match oracles with [ f; d ] -> (f, d) | _ -> assert false
  in
  let records = Audit.records audit in
  let idx = index_segment records ~lo:0 ~hi:(Audit.next_id audit) in
  let findings =
    findings_of_segment ~case:name ~idx
      ~actual:(taint_set (Engine.shadow engine))
      ~full ~direct
  in
  summarize audit findings

(* -- ranked summary & report ---------------------------------------- *)

(* pc of each record id, for the per-pc ranking *)
let pc_index records =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (r : Audit.record) -> Hashtbl.replace tbl r.id r.pc)
    records;
  tbl

(* (direction, tag, pc) -> bytes whose blame includes a decision at
   that pc. A byte blamed on records at k distinct pcs counts toward
   each — the ranking answers "which sites should I look at". *)
let ranked summary =
  let pcs = pc_index (Audit.records summary.audit) in
  let cells = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let f_pcs =
        List.filter_map (fun id -> Hashtbl.find_opt pcs id) f.blamed
        |> List.sort_uniq Int.compare
      in
      List.iter
        (fun pc ->
          let key = (f.direction, f.tag, pc) in
          let bytes, ids =
            Option.value ~default:(0, []) (Hashtbl.find_opt cells key)
          in
          Hashtbl.replace cells key (bytes + 1, f.blamed @ ids))
        f_pcs)
    summary.findings;
  Hashtbl.fold
    (fun (dir, tag, pc) (bytes, ids) acc ->
      (dir, tag, pc, bytes, List.sort_uniq Int.compare ids) :: acc)
    cells []
  |> List.sort (fun (d1, t1, p1, b1, _) (d2, t2, p2, b2, _) ->
         match Int.compare b2 b1 with
         | 0 -> compare (d1, t1, p1) (d2, t2, p2)
         | c -> c)

let max_finding_rows = 40

let fmt_ids ids =
  let shown = List.filteri (fun i _ -> i < 6) ids in
  String.concat "," (List.map string_of_int shown)
  ^ if List.length ids > 6 then Printf.sprintf ",+%d" (List.length ids - 6) else ""

let report ~title summary =
  let r = Report.create ~title in
  let over, under =
    List.partition (fun f -> f.direction = Over) summary.findings
  in
  Report.textf r
    "%d over-tainted (beyond direct flows) and %d under-tainted \
     (vs. propagate-all) byte/tag pairs; %d/%d attributed to decision \
     records or evictions (%.0f%%). Audit log: %d records (%d dropped)."
    (List.length over) (List.length under) summary.attributed summary.total
    (if summary.total = 0 then 100.0
     else 100.0 *. float_of_int summary.attributed /. float_of_int summary.total)
    (Audit.length summary.audit)
    (Audit.dropped summary.audit);
  if summary.findings <> [] then begin
    let t =
      Table.create
        ~header:[ "case"; "dir"; "addr"; "tag"; "blamed records" ]
        ()
    in
    List.iteri
      (fun i f ->
        if i < max_finding_rows then
          Table.add_row t
            [
              f.case;
              direction_to_string f.direction;
              Printf.sprintf "0x%x" f.addr;
              f.tag;
              (if f.blamed = [] then "UNATTRIBUTED" else fmt_ids f.blamed);
            ])
      summary.findings;
    Report.table r t;
    if List.length summary.findings > max_finding_rows then
      Report.textf r "... %d more findings not shown."
        (List.length summary.findings - max_finding_rows);
    let rt =
      Table.create ~header:[ "dir"; "tag"; "pc"; "bytes"; "records" ] ()
    in
    List.iter
      (fun (dir, tag, pc, bytes, ids) ->
        Table.add_row rt
          [
            direction_to_string dir;
            tag;
            string_of_int pc;
            string_of_int bytes;
            fmt_ids ids;
          ])
      (ranked summary);
    Report.table r rt
  end;
  Report.finish r
