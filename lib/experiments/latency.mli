(** Detection latency: how many instructions execute between the start
    of the attack replay and the first netflow+export-table confluence
    alarm, per shell and per policy.

    The paper's Table II reports *whether* bytes are detected; with the
    engine's online confluence watching we can also reproduce the
    operationally interesting number — when the alarm would have
    fired. A policy that loses taint through the decode stage never
    fires at all. *)

type row = {
  variant : Mitos_workload.Attack.variant;
  total_steps : int;
  alarm_step : (string * int option) list;  (** per policy name *)
}

val policies_under_test : unit -> (string * Mitos_dift.Policy.t * bool) list
(** (name, policy, route-direct-flows-through-policy). *)

val run_variant : Mitos_workload.Attack.variant -> row

val run : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
(** [pool] runs one shell variant per task. *)
