open Mitos_dift
module Table = Mitos_util.Table

let policies () =
  [
    ("block-all", Policies.block_all);
    ("faros", Policies.faros);
    ("minos", Policies.minos_width);
    ("mitos(young)",
      (* fresh tags, zero pollution: MITOS propagates everything *)
      Policies.mitos
        (Mitos.Params.make ~tau:1.0 ~tau_scale:1.0
           ~total_tag_space:1_000_000 ~mem_capacity:10_000 ()));
    ("all", Policies.propagate_all);
  ]

let run ?pool () =
  let r =
    Report.create
      ~title:"Policy conformance: litmus flow classes x policies"
  in
  let names = List.map fst (policies ()) in
  let t = Table.create ~header:(("case" :: names) @ [ "class" ]) () in
  let outcomes =
    Mitos_parallel.Pool.map_opt pool
      ~f:(fun (_, policy) -> Litmus.run policy)
      (policies ())
  in
  List.iteri
    (fun i case ->
      Table.add_row t
        ((case.Litmus.case_name
         :: List.map
              (fun outcome ->
                if (List.nth outcome i : Litmus.outcome).Litmus.tainted then
                  "taint"
                else "-")
              outcomes)
        @ [
            (match case.Litmus.case_class with
            | Litmus.Direct -> "direct"
            | Litmus.Addr -> "addr"
            | Litmus.Ctrl -> "ctrl"
            | Litmus.Ijump -> "ijump");
          ]))
    Litmus.cases;
  Report.table r t;
  Report.text r
    "Left to right: the undertainting endpoint propagates nothing, \
     FAROS adds direct flows, Minos adds byte-wide address dependencies, \
     MITOS (here with young tags and an empty system) adds everything \
     cost-effective, and the overtainting endpoint adds the rest. \
     'clean-overwrite' and 'ctrl-after-join' stay clean under every \
     policy - those are engine semantics, not policy choices.";
  Report.finish r
