(** The coverage matrix: every workload under every named policy.

    One table, rows = workloads, columns = policies, cells = the
    fraction of indirect-flow candidates propagated (and, for attack
    workloads, the detected bytes). A quick global sanity view: the
    undertainting endpoint is a column of 0%, the overtainting
    endpoint a column of 100%, and MITOS sits in between at different
    points per workload — the paper's dilemma in one screenful. *)

val policies : unit -> (string * Mitos_dift.Policy.t) list

val run :
  ?workloads:string list ->
  ?pool:Mitos_parallel.Pool.t ->
  unit ->
  Report.section
(** Defaults to every registry workload. Expensive: each cell is a
    full tracked execution. [pool] parallelizes over workload rows;
    output is byte-identical to the sequential run. *)
