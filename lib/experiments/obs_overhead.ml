module Obs = Mitos_obs.Obs
module Audit = Mitos_obs.Audit
module Engine = Mitos_dift.Engine
module W = Mitos_workload

type result = {
  records : int;
  repetitions : int;
  baseline_s : float;
  disabled_s : float;
  enabled_s : float;
  server_s : float;
  audit_s : float;
  profiled_s : float;
}

type estimator_contention = {
  est_shards : int;
  est_wall_s : float;
  est_acquisitions : int;
  est_contended : int;
  est_wait_ns : int;
}

let contended_share c =
  if c.est_acquisitions = 0 then 0.0
  else float_of_int c.est_contended /. float_of_int c.est_acquisitions

(* Four domains hammering publish+global on one estimator, before
   (1 shard) and after (one shard per domain pair): the per-instance
   shard-lock stats say how often a publish found its lock held, and
   how long it waited — the contention the sharding removes. *)
let measure_estimator_contention ?(domains = 4) ?(rounds = 25_000) ~shards () =
  let per_domain = 2 in
  let nodes = domains * per_domain in
  let est = Mitos_distrib.Estimator.create ~shards ~nodes () in
  let t0 = Unix.gettimeofday () in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to rounds do
              for k = 0 to per_domain - 1 do
                let node = (d * per_domain) + k in
                Mitos_distrib.Estimator.publish est ~node
                  (float_of_int ((node * 7) + i));
                ignore (Mitos_distrib.Estimator.global est)
              done
            done))
  in
  List.iter Domain.join spawned;
  let est_wall_s = Unix.gettimeofday () -. t0 in
  let acq, cont, wait =
    List.fold_left
      (fun (a, c, w) ((_ : string), (st : Mitos_obs.Contended.stats)) ->
        (a + st.acquisitions, c + st.contended, w + st.wait_ns_total))
      (0, 0, 0)
      (Mitos_distrib.Estimator.shard_stats est)
  in
  {
    est_shards = Mitos_distrib.Estimator.shards est;
    est_wall_s;
    est_acquisitions = acq;
    est_contended = cont;
    est_wait_ns = wait;
  }

let overhead ~baseline t =
  if baseline <= 0.0 then 0.0 else (t -. baseline) /. baseline

let disabled_overhead r = overhead ~baseline:r.baseline_s r.disabled_s
let enabled_overhead r = overhead ~baseline:r.baseline_s r.enabled_s
let server_overhead r = overhead ~baseline:r.baseline_s r.server_s
let audit_overhead r = overhead ~baseline:r.baseline_s r.audit_s
let profiled_overhead r = overhead ~baseline:r.baseline_s r.profiled_s
let contract_ok r = disabled_overhead r <= 0.05

(* One replay of the slice under a fresh engine, returning the time
   spent in the record-processing loop only. Engine and shadow
   construction (and the instrumentation wiring itself) happen
   outside the timed window: the overhead contract is about the
   per-record hot path, and construction is allocation-heavy enough
   to drown a few-percent signal in GC noise. [setup] builds this
   repetition's observability wiring and returns its teardown (run
   after the timed window, e.g. clearing the global audit probe). *)
let replay_once ~built ~trace ~slice setup =
  let engine =
    W.Workload.engine_of
      ~policy:(Mitos_dift.Policies.mitos (Calib.sensitivity_params ()))
      built
  in
  let teardown = setup engine in
  Engine.attach_shadow engine ~mem_size:(Mitos_replay.Trace.mem_size trace);
  let t0 = Unix.gettimeofday () in
  Array.iter (Engine.process_record engine) slice;
  let dt = Unix.gettimeofday () -. t0 in
  teardown ();
  dt

(* Best-of-repetitions processing time per mode, with the modes
   interleaved round-robin: comparing a few percent between modes is
   only sound if scheduler noise, CPU-frequency drift and heap state
   hit every mode alike. Each sample sums [inner] replays so it is
   long enough (several ms) for the clock not to dominate, and a
   major collection before each sample keeps heap state
   comparable. *)
let time_modes ~repetitions ~inner fs =
  List.iter (fun f -> ignore (f ())) fs;
  (* warm-up *)
  let best = Array.make (List.length fs) infinity in
  for _ = 1 to repetitions do
    List.iteri
      (fun i f ->
        Gc.major ();
        let total = ref 0.0 in
        for _ = 1 to inner do
          total := !total +. f ()
        done;
        let dt = !total /. float_of_int inner in
        if dt < best.(i) then best.(i) <- dt)
      fs
  done;
  best

let no_teardown () = ()

let measure ?(seed = 1) ?(records = 5_000) ?(repetitions = 10) () =
  let built = W.Netbench.build ~seed ~chunks:4 () in
  let trace = W.Workload.record built in
  let all = Mitos_replay.Trace.records trace in
  let slice = Array.sub all 0 (min records (Array.length all)) in
  let built = W.Netbench.build ~seed ~chunks:4 () in
  let run setup () = replay_once ~built ~trace ~slice setup in
  (* target ~100k records per timed sample *)
  let inner = max 1 (100_000 / max 1 (Array.length slice)) in
  let real_obs () = Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) () in
  let times =
    time_modes ~repetitions ~inner
      [
        run (fun _engine -> no_teardown);
        run (fun engine ->
            Engine.instrument engine Obs.disabled;
            no_teardown);
        run (fun engine ->
            Engine.instrument engine (real_obs ());
            no_teardown);
        run (fun engine ->
            (* full audit: flight recorder on the decision probe and
               the engine (evictions, flow context) *)
            let audit = Audit.create ~capacity:(1 lsl 20) () in
            Mitos.Decision.set_audit (Some audit);
            Engine.instrument ~audit engine (real_obs ());
            fun () -> Mitos.Decision.set_audit None);
      ]
  in
  (* The exposition-server row needs the server parked for the whole
     timed window, and "a server is up" is process-global: it cannot
     be interleaved with the server-free modes above (it would leak
     into their samples), and starting/joining its domain around each
     sample would time domain startup racing the replay instead of
     the steady state of a --listen run. So the server row is a
     separate pass: one server up for the duration, nothing scraping,
     the same enabled-mode replay timed under it. *)
  let server_obs = real_obs () in
  let server =
    Mitos_obs.Server.start
      [
        Mitos_obs.Server.route ~file:"metrics.prom" "/metrics" (fun () ->
            Mitos_obs.Server.prometheus (Obs.prometheus server_obs));
      ]
  in
  let server_times =
    Fun.protect
      ~finally:(fun () -> Mitos_obs.Server.stop server)
      (fun () ->
        time_modes ~repetitions ~inner
          [
            run (fun engine ->
                Engine.instrument engine server_obs;
                no_teardown);
          ])
  in
  (* Profiler-on row: the full cross-process profiling stack active —
     enabled obs, a background Runtime sampler polling GC and lock
     stats, and one trace context minted per record (what propagation
     adds to every service roundtrip). A separate pass for the same
     reason as the server row: the sampler domain is process-global
     while it runs and must not leak into the other modes' samples. *)
  let profiled_obs = real_obs () in
  let prop =
    Mitos_obs.Propagation.create ~seed (Mitos_obs.Obs_clock.real ())
  in
  let run_profiled () =
    let dt = replay_once ~built ~trace ~slice (fun engine ->
        Engine.instrument engine profiled_obs;
        no_teardown)
    in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to Array.length slice do
      ignore (Mitos_obs.Propagation.fresh prop)
    done;
    dt +. (Unix.gettimeofday () -. t0)
  in
  let sampler =
    Mitos_obs.Runtime.start ~period:0.01 (Obs.registry profiled_obs)
  in
  let profiled_times =
    Fun.protect
      ~finally:(fun () -> Mitos_obs.Runtime.stop sampler)
      (fun () -> time_modes ~repetitions ~inner [ run_profiled ])
  in
  let baseline_s = times.(0)
  and disabled_s = times.(1)
  and enabled_s = times.(2)
  and server_s = server_times.(0)
  and audit_s = times.(3)
  and profiled_s = profiled_times.(0) in
  {
    records = Array.length slice;
    repetitions;
    baseline_s;
    disabled_s;
    enabled_s;
    server_s;
    audit_s;
    profiled_s;
  }

let run ?seed ?records ?repetitions () =
  let r = measure ?seed ?records ?repetitions () in
  let report =
    Report.create ~title:"Observability overhead (engine replay benchmark)"
  in
  Report.textf report
    "Replay of %d netbench records (mitos policy), best of %d repetitions \
     per mode."
    r.records r.repetitions;
  let t = Mitos_util.Table.create ~header:[ "mode"; "wall (ms)"; "overhead" ] () in
  let row name seconds =
    Mitos_util.Table.add_row t
      [
        name;
        Printf.sprintf "%.3f" (1000.0 *. seconds);
        Printf.sprintf "%+.1f%%" (100.0 *. overhead ~baseline:r.baseline_s seconds);
      ]
  in
  row "baseline (no obs, no audit)" r.baseline_s;
  row "instrumented, no-op sink" r.disabled_s;
  row "instrumented, enabled (real clock)" r.enabled_s;
  row "enabled + exposition server (idle)" r.server_s;
  row "enabled + audit flight recorder" r.audit_s;
  row "enabled + propagation + runtime sampler" r.profiled_s;
  Report.table report t;
  Report.textf report
    "Contract: the no-op sink (audit disabled) must stay within 5%% of \
     baseline (measured %+.1f%%), and an attached-but-idle exposition \
     server within 5%% of the enabled row (measured %+.1f%% vs baseline, \
     %+.1f%% vs enabled). Profiler on (propagation + runtime sampling): \
     %+.1f%% vs baseline — informational, the profiler is opt-in."
    (100.0 *. disabled_overhead r)
    (100.0 *. server_overhead r)
    (100.0 *. overhead ~baseline:r.enabled_s r.server_s)
    (100.0 *. profiled_overhead r);
  Report.textf report "disabled-overhead contract (<= 5%%): %s"
    (if contract_ok r then "PASS" else "FAIL");
  (* lock_estimator_contention, before/after sharding: same 4-domain
     publish+global hammer against 1 shard and 4 shards, reported from
     the instrumented shard locks so the win (or, on one core, the
     absence of cross-core contention) is visible from the tool *)
  let before = measure_estimator_contention ~shards:1 () in
  let after = measure_estimator_contention ~shards:4 () in
  let ct =
    Mitos_util.Table.create
      ~header:
        [
          "estimator"; "wall (ms)"; "acquisitions"; "contended"; "share";
          "wait (us)";
        ]
      ()
  in
  let crow (c : estimator_contention) =
    Mitos_util.Table.add_row ct
      [
        Printf.sprintf "%d shard%s" c.est_shards
          (if c.est_shards = 1 then "" else "s");
        Printf.sprintf "%.3f" (1000.0 *. c.est_wall_s);
        string_of_int c.est_acquisitions;
        string_of_int c.est_contended;
        Printf.sprintf "%.2f%%" (100.0 *. contended_share c);
        Printf.sprintf "%.1f" (float_of_int c.est_wait_ns /. 1e3);
      ]
  in
  crow before;
  crow after;
  Report.table report ct;
  Report.textf report
    "lock_estimator_contention: 4 domains x publish+global, contended \
     share %.2f%% at 1 shard -> %.2f%% at 4 shards (publishes now \
     serialize only within a shard; the global read is lock-free at any \
     shard count)."
    (100.0 *. contended_share before)
    (100.0 *. contended_share after);
  Report.finish report
