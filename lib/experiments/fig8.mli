(** Fig. 8: fairness / tag balancing vs. α.

    The network benchmark replayed for six values of α; the fairness
    degree is the paper's metric — the mean squared difference between
    the copy counts of different tags (lower = better balanced).
    Expected shape: larger α penalizes over-propagated tags harder, so
    the MSE drops (the paper reports balancing improving "up to
    2x"). *)

val alphas : float list

type point = {
  alpha : float;
  fairness : Mitos.Fairness.report;
  propagated : int;
  blocked : int;
}

val sweep :
  ?pool:Mitos_parallel.Pool.t ->
  Mitos_workload.Workload.built ->
  Mitos_replay.Trace.t ->
  point list
(** One replay per α; [pool] runs them in parallel, results stay in
    α order. *)

val run :
  ?recorded:Mitos_workload.Workload.built * Mitos_replay.Trace.t ->
  ?pool:Mitos_parallel.Pool.t ->
  unit ->
  Report.section
