(** Table II: FAROS vs. MITOS on the in-memory-only attack.

    Six shell variants are each run under (i) FAROS — aggressive
    direct-flow propagation, no indirect flows — and (ii) MITOS
    handling all flows through Alg. 2 with the Table II configuration
    ({!Calib.attack_params}). Reported per the paper: time (we report
    both wall-clock and the deterministic shadow-op count), space
    (shadow-memory footprint), and detected bytes (bytes carrying both
    netflow and export-table tags). The paper's averages: FAROS 837 s /
    2.21 MB / 543 bytes vs. MITOS 509 s / 1.99 MB / 1449 bytes, i.e.
    1.65x / 1.11x / 2.67x. *)

type row = {
  variant : Mitos_workload.Attack.variant;
  faros : Mitos_dift.Metrics.summary;
  mitos : Mitos_dift.Metrics.summary;
}

type result = {
  rows : row list;
  time_improvement : float;  (** FAROS ops / MITOS ops *)
  wall_improvement : float;  (** FAROS wall / MITOS wall *)
  space_improvement : float;
  detection_improvement : float;
}

val run_variant : Mitos_workload.Attack.variant -> row

val run_all : ?pool:Mitos_parallel.Pool.t -> unit -> result
(** [pool] runs one attack variant per task. *)

val run : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
(** The printed report contains only deterministic metrics (shadow
    ops, footprint, detected bytes); the wall-clock ratio is kept in
    {!result.wall_improvement} but not rendered, so sequential and
    parallel runs produce byte-identical reports. *)
