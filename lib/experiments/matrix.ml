open Mitos_dift
module W = Mitos_workload
module Table = Mitos_util.Table

let policies () =
  [
    ("faros", Policies.faros);
    ("minos", Policies.minos_width);
    ("mitos t=1", Policies.mitos (Calib.sensitivity_params ~tau:1.0 ()));
    ("mitos t=.1", Policies.mitos (Calib.sensitivity_params ~tau:0.1 ()));
    ("mitos t=.01", Policies.mitos (Calib.sensitivity_params ~tau:0.01 ()));
    ("all", Policies.propagate_all);
  ]

let cell name policy =
  let built = W.Registry.build name ~seed:3 in
  let engine = W.Workload.run_live ~policy built in
  let s = Metrics.of_engine engine in
  let total = s.Metrics.ifp_propagated + s.Metrics.ifp_blocked in
  if total = 0 then "-"
  else begin
    let rate =
      100.0 *. float_of_int s.Metrics.ifp_propagated /. float_of_int total
    in
    if s.Metrics.detected_bytes > 0 then
      Printf.sprintf "%.0f%% (%dd)" rate s.Metrics.detected_bytes
    else Printf.sprintf "%.0f%%" rate
  end

let run ?workloads ?pool () =
  let workloads =
    match workloads with Some w -> w | None -> W.Registry.names
  in
  let r =
    Report.create
      ~title:
        "Coverage matrix: IFP propagation rate per workload x policy \
         ('(Nd)' = detected attack bytes)"
  in
  let names = List.map fst (policies ()) in
  let t = Table.create ~header:("workload" :: names) () in
  (* one task per workload row; each task builds its own policy
     instances so no decision state is shared across domains *)
  let rows =
    Mitos_parallel.Pool.map_opt pool
      ~f:(fun workload ->
        workload
        :: List.map (fun (_, policy) -> cell workload policy) (policies ()))
      workloads
  in
  List.iter (Table.add_row t) rows;
  Report.table r t;
  Report.text r
    "Columns are ordered from the undertainting endpoint (faros: 0%) to \
     the overtainting endpoint (all: 100%); MITOS interpolates, landing \
     at different operating points per workload as tag counts and \
     pollution differ.";
  Report.finish r
