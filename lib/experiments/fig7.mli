(** Fig. 7: the undertainting vs. overtainting trade-off over time.

    The network benchmark is recorded once and replayed under MITOS
    with τ ∈ {1, 10⁻¹, 10⁻²}. For every indirect-flow decision we log
    the two Eq. (8) submarginals (Fig. 7(a)) and the ±1 decision
    (Figs. 7(b-d)). Expected shape: the overtainting submarginal
    (mostly) grows with time as pollution accumulates; larger τ blocks
    more; smaller τ propagates more. *)

type sample = {
  step : int;
  under : float;  (** undertainting submarginal (negative) *)
  over : float;  (** overtainting submarginal, τ included *)
  propagated : bool;
}

val taus : float list

val record_netbench :
  unit -> Mitos_workload.Workload.built * Mitos_replay.Trace.t
(** The standard sensitivity recording (netbench, calibrated seed). *)

val replay_with_tau :
  Mitos_workload.Workload.built ->
  Mitos_replay.Trace.t ->
  tau:float ->
  sample list * Mitos_dift.Metrics.summary
(** One replay; samples in decision order. *)

val bucketize : sample list -> buckets:int ->
  (int * float * float * int * int) list
(** Per time bucket: (last step, mean under, mean over, #propagated,
    #blocked). *)

val run :
  ?recorded:Mitos_workload.Workload.built * Mitos_replay.Trace.t ->
  ?pool:Mitos_parallel.Pool.t ->
  unit ->
  Report.section
(** [recorded] reuses an existing netbench recording (the harness
    records once and replays it for Figs. 7-9, as the paper replays
    one PANDA recording). [pool] runs one replay per τ in parallel;
    rendering stays in τ order, so output is byte-identical. *)
