open Mitos_dift
open Mitos_tag
module Workload = Mitos_workload.Workload
module Attack = Mitos_workload.Attack
module Table = Mitos_util.Table

(* -- A: eviction policies ------------------------------------------- *)

let max_occupancy shadow =
  let m = ref 0 in
  Mitos_tag.Shadow.iter_tainted shadow (fun _ tags ->
      m := max !m (List.length tags));
  !m

let eviction ?pool () =
  let r =
    Report.create
      ~title:"Ablation A: provenance-list size and eviction policy"
  in
  let t =
    Table.create
      ~header:
        [ "eviction"; "m_prov"; "detected"; "max tags/byte"; "space(B)";
          "copies" ]
      ()
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool
       ~f:(fun (eviction, m_prov) ->
         let built =
           Attack.build Attack.Reverse_https ~seed:Calib.attack_seed ()
         in
         let config = { Calib.attack_engine_config with eviction; m_prov } in
         let engine =
           Workload.run_live ~config
             ~policy:(Calib.mitos_all_flows Calib.attack_params)
             built
         in
         let s = Metrics.of_engine engine in
         [
           Mitos_tag.Shadow.strategy_to_string eviction;
           string_of_int m_prov;
           string_of_int s.Metrics.detected_bytes;
           string_of_int (max_occupancy (Engine.shadow engine));
           string_of_int s.Metrics.footprint_bytes;
           string_of_int s.Metrics.total_copies;
         ])
       [
         (Shadow.Structural Provenance.Fifo, 10);
         (Shadow.Structural Provenance.Lru, 10);
         (Shadow.Structural Provenance.Reject, 10);
         (Shadow.Least_marginal, 10);
         (Shadow.Structural Provenance.Fifo, 1);
         (Shadow.Structural Provenance.Fifo, 2);
         (Shadow.Structural Provenance.Reject, 1);
         (Shadow.Least_marginal, 2);
       ]);
  Report.table r t;
  Report.text r
    "Detection needs at least two slots per byte (netflow + export-table \
     must co-reside): M_prov=1 destroys it entirely with FIFO (the export \
     mark evicts the netflow tag) and with reject (the mark never lands). \
     At the paper's M_prov=10, eviction policy is immaterial for this \
     workload because lists never fill - the pressure FAROS worried about \
     comes from much longer runs. 'least-marginal' is the cost-based \
     scheduling the paper's SVI defers to future work: under pressure it \
     evicts the most-copied co-resident tag (the one with the smallest \
     per-copy undertainting benefit under Eq. 8).";
  Report.finish r

(* -- B: Alg. 2 pollution re-evaluation ------------------------------- *)

let recompute ?pool () =
  let r = Report.create ~title:"Ablation B: Alg. 2 line 9 (recompute) on/off" in
  let t =
    Table.create ~header:[ "recompute"; "ifp+"; "ifp-"; "copies"; "mse" ] ()
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool
       ~f:(fun recompute ->
         let built =
           Mitos_workload.Netbench.build ~seed:Calib.netbench_seed ()
         in
         let params = Calib.sensitivity_params () in
         let engine =
           Workload.run_live ~policy:(Policies.mitos ~recompute params) built
         in
         let s = Metrics.of_engine engine in
         [
           string_of_bool recompute;
           string_of_int s.Metrics.ifp_propagated;
           string_of_int s.Metrics.ifp_blocked;
           string_of_int s.Metrics.total_copies;
           Printf.sprintf "%.4g" s.Metrics.fairness.Mitos.Fairness.mse;
         ])
       [ true; false ]);
  Report.table r t;
  Report.text r
    "With homogeneous o_t the re-evaluation only matters when several \
     tags are accepted within one flow, so the aggregate difference is \
     small - consistent with the paper treating it as a refinement.";
  Report.finish r

(* -- C: distributed staleness ---------------------------------------- *)

let staleness ?pool () =
  let r =
    Report.create
      ~title:"Ablation C: distributed pollution-estimate staleness"
  in
  let t =
    Table.create
      ~header:
        [ "sync period"; "ifp+"; "ifp-"; "syncs"; "mean staleness" ]
      ()
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool
       ~f:(fun sync_period ->
         let builts =
           List.init 4 (fun i ->
               Mitos_workload.Netbench.build ~seed:(Calib.netbench_seed + i)
                 ~chunks:24 ())
         in
         let cluster =
           Mitos_distrib.Cluster.create
             ~params:(Calib.sensitivity_params ())
             ~sync_period builts
         in
         ignore (Mitos_distrib.Cluster.run cluster);
         [
           string_of_int sync_period;
           string_of_int (Mitos_distrib.Cluster.total_propagated cluster);
           string_of_int (Mitos_distrib.Cluster.total_blocked cluster);
           string_of_int (Mitos_distrib.Cluster.syncs_performed cluster);
           Printf.sprintf "%.4f"
             (Mitos_distrib.Cluster.mean_staleness cluster);
         ])
       [ 1; 10; 100; 1000; 10000 ]);
  Report.table r t;
  Report.text r
    "Decisions drift only marginally as the sync period grows by four \
     orders of magnitude: the overtainting term moves slowly relative \
     to per-flow decisions, which is what makes the single-scalar \
     global state practical in large distributed systems (paper SIV-B).";
  Report.finish r

(* -- D: online rule vs offline optimum -------------------------------- *)

let solution_quality () =
  let r =
    Report.create
      ~title:"Ablation D: online greedy (Alg. 2 limit) vs offline KKT optimum"
  in
  let params =
    Mitos.Params.make ~tau:1.0 ~tau_scale:1.0 ~total_tag_space:10_000
      ~mem_capacity:1_000 ()
  in
  let items =
    Array.of_list
      (List.map
         (fun ty -> Mitos.Solver.item params ty)
         [ Tag_type.Network; Tag_type.Network; Tag_type.File; Tag_type.Process ])
  in
  let kkt = Mitos.Solver.solve_kkt params items in
  let greedy = Mitos.Solver.solve_greedy_integer params items in
  let exact, bb_stats = Mitos.Solver.solve_branch_and_bound params items in
  let t =
    Table.create
      ~header:[ "tag"; "KKT n* (relaxed)"; "greedy n"; "exact integer n" ]
      ()
  in
  Array.iteri
    (fun j item ->
      Table.add_row t
        [
          Printf.sprintf "%s[%d]" (Tag_type.to_string item.Mitos.Solver.ty) j;
          Printf.sprintf "%.2f" kkt.(j);
          string_of_int greedy.(j);
          string_of_int exact.(j);
        ])
    items;
  Report.table r t;
  let obj n = Mitos.Solver.objective params items n in
  Report.textf r
    "Objective: relaxed KKT %.4f <= exact integer %.4f (branch-and-bound, \
     %d nodes, %d pruned) <= greedy %.4f. The online rule's steady state \
     (greedy) sits within integer rounding of the NP-hard problem's true \
     optimum - quantifying what the paper's relaxation gives up."
    (obj kkt) bb_stats.Mitos.Solver.optimum
    bb_stats.Mitos.Solver.nodes_explored bb_stats.Mitos.Solver.nodes_pruned
    (obj (Array.map float_of_int greedy));
  Report.finish r

(* -- E: adaptive tau --------------------------------------------------- *)

let adaptive ?pool () =
  let r =
    Report.create
      ~title:"Ablation E: fixed tau vs adaptive tau (pollution budget)"
  in
  let t =
    Table.create
      ~header:
        [ "policy"; "final tau"; "ifp+"; "ifp-"; "copies";
          "pollution fraction" ]
      ()
  in
  (* each job builds its own policy (and controller) so nothing is
     shared across domains; tau_of reads the controller after its own
     run within the same task *)
  let run_one label policy tau_of =
    let built = Mitos_workload.Netbench.build ~seed:Calib.netbench_seed () in
    let engine = Workload.run_live ~policy built in
    let params = Calib.sensitivity_params () in
    let fraction =
      Mitos.Cost.weighted_pollution params (Engine.stats engine)
      /. float_of_int params.Mitos.Params.total_tag_space
    in
    let c = Engine.counters engine in
    [
      label;
      Printf.sprintf "%.4g" (tau_of ());
      string_of_int c.Engine.ifp_propagated;
      string_of_int c.Engine.ifp_blocked;
      string_of_int (Tag_stats.total (Engine.stats engine));
      Printf.sprintf "%.3g" fraction;
    ]
  in
  let jobs =
    List.map
      (fun tau () ->
        let params = Calib.sensitivity_params ~tau () in
        run_one
          (Printf.sprintf "fixed tau=%g" tau)
          (Policies.mitos params)
          (fun () -> tau))
      [ 1.0; 0.1; 0.01 ]
    @ [
        (fun () ->
          let controller =
            Mitos.Adaptive.create ~gain:0.3 ~target_pollution:2e-8
              (Calib.sensitivity_params ~tau:1.0 ())
          in
          run_one "adaptive (budget 2e-8)"
            (Policies.mitos_adaptive ~update_period:128 controller)
            (fun () -> Mitos.Adaptive.tau controller));
      ]
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool ~f:(fun job -> job ()) jobs);
  Report.table r t;
  Report.text r
    "The controller starts at tau=1 (heavy blocking) and walks tau down \
     until the pollution budget is met - landing between the fixed \
     settings without hand calibration. tau is an operating point, not \
     a constant.";
  Report.finish r

(* -- F: pollution weights o_t ------------------------------------------ *)

let pollution_weights ?pool () =
  let r =
    Report.create
      ~title:
        "Ablation F: per-type pollution weight o_netflow (the dual of \
         Fig. 9)"
  in
  let t =
    Table.create
      ~header:[ "o_netflow"; "net+"; "net-"; "file+"; "file-"; "copies" ]
      ()
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool
       ~f:(fun o_net ->
         let params =
           Mitos.Params.with_o
             (Calib.sensitivity_params ())
             Tag_type.Network o_net
         in
         let built =
           Mitos_workload.Netbench.build ~seed:Calib.netbench_seed ()
         in
         let engine =
           Workload.run_live ~policy:(Policies.mitos params) built
         in
         let c = Engine.counters engine in
         let prop ty = c.Engine.per_type_propagated.(Tag_type.to_int ty) in
         let block ty = c.Engine.per_type_blocked.(Tag_type.to_int ty) in
         [
           Printf.sprintf "%g" o_net;
           string_of_int (prop Tag_type.Network);
           string_of_int (block Tag_type.Network);
           string_of_int (prop Tag_type.File);
           string_of_int (block Tag_type.File);
           string_of_int (Tag_stats.total (Engine.stats engine));
         ])
       [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]);
  Report.table r t;
  Report.text r
    "o_t is u_t's dual: where u_netflow boosts netflow propagation by \
     raising its undertainting weight, o_netflow suppresses it by making \
     each netflow copy count more heavily against the shared pollution \
     budget - propagation decreases monotonically in o_netflow.";
  Report.finish r

(* -- G: pollution-visibility topology ----------------------------------- *)

let topology ?pool () =
  let r =
    Report.create
      ~title:
        "Ablation G: pollution-visibility topology (gossip neighbourhoods)"
  in
  let n = 6 in
  let ring = List.init n (fun i -> (i, (i + 1) mod n)) in
  let star = List.init (n - 1) (fun i -> (0, i + 1)) in
  let isolated = [] in
  let t =
    Table.create
      ~header:[ "topology"; "ifp+"; "ifp-"; "copies"; "mean staleness" ]
      ()
  in
  List.iter (Table.add_row t)
    (Mitos_parallel.Pool.map_opt pool
       ~f:(fun (label, topology) ->
         let pairs =
           List.init n (fun i ->
               ( Mitos_workload.Netbench.build ~seed:(Calib.netbench_seed + i)
                   ~chunks:12 (),
                 Calib.sensitivity_params () ))
         in
         let cluster =
           Mitos_distrib.Cluster.create_heterogeneous ?topology
             ~sync_period:50 pairs
         in
         ignore (Mitos_distrib.Cluster.run cluster);
         [
           label;
           string_of_int (Mitos_distrib.Cluster.total_propagated cluster);
           string_of_int (Mitos_distrib.Cluster.total_blocked cluster);
           string_of_int
             (List.fold_left
                (fun acc (s : Metrics.summary) ->
                  acc + s.Metrics.total_copies)
                0
                (Mitos_distrib.Cluster.summaries cluster));
           Printf.sprintf "%.4f"
             (Mitos_distrib.Cluster.mean_staleness cluster);
         ])
       [
         ("complete (global scalar)", None);
         ("ring", Some ring);
         ("star", Some star);
         ("isolated", Some isolated);
       ]);
  Report.table r t;
  Report.text r
    "Narrower pollution visibility under-estimates the global state, so \
     nodes propagate more as the topology thins - fully isolated nodes \
     drift the most, while even a ring's neighbourhood view can carry \
     enough pollution mass to reproduce the global decisions. The spread \
     bounds how much the single-scalar abstraction can be decentralized \
     before decisions drift.";
  Report.finish r

(* sections run sequentially; each fans its own grid out on [pool]
   (the pool runs nested maps inline, so no section-level nesting) *)
let run_all ?pool () =
  [
    eviction ?pool (); recompute ?pool (); staleness ?pool ();
    solution_quality (); adaptive ?pool (); pollution_weights ?pool ();
    topology ?pool ();
  ]
