(** The perf-regression gate: diff two [BENCH_decisions.json] files.

    [mitos-cli bench compare OLD.json NEW.json --tolerance PCT] (and
    the CI job behind it) compares the microbenchmark figures that
    gate the hot path — Alg. 1/Alg. 2 per-decision latency and engine
    replay throughput — and fails when any of them moved against us by
    more than the tolerance. Derived figures (speedups,
    decisions-per-second) and the load-sensitive pool timings are
    deliberately not gated: they re-derive from the gated ones and
    would double-count noise.

    A metric present in only one file is reported as skipped, not
    failed, so the gate survives schema growth in either direction. *)

type direction =
  | Lower_better  (** latencies: regression when NEW exceeds OLD *)
  | Higher_better  (** throughputs: regression when NEW trails OLD *)

type row = {
  metric : string;  (** dotted path, e.g. ["alg1.direct_ns"] *)
  direction : direction;
  old_value : float;
  new_value : float;
  change_pct : float;
      (** signed, positive = moved in the {e bad} direction *)
  regressed : bool;  (** [change_pct > tolerance_pct] *)
}

type report = {
  tolerance_pct : float;
  rows : row list;  (** in {!gated_metrics} order *)
  skipped : string list;  (** metrics missing from either file *)
}

val gated_metrics : (string list * direction) list
(** The compared paths, in report order. *)

val regressions : report -> row list
val ok : report -> bool

val of_json :
  tolerance_pct:float -> old_json:string -> new_json:string ->
  (report, string) result
(** [Error] on unparseable input or a wrong/missing [schema] marker;
    the tolerance must be non-negative. *)

val of_files : tolerance_pct:float -> string -> string -> (report, string) result
(** Reads both files; [Error] (not an exception) on an unreadable
    path. *)

val render : report -> string
(** The human/CI table: one line per row with old/new/change and a
    verdict line ([ok] or [REGRESSION: n metric(s) ...]). *)
