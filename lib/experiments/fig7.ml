open Mitos_dift
module Workload = Mitos_workload.Workload
module Table = Mitos_util.Table

type sample = { step : int; under : float; over : float; propagated : bool }

let taus = [ 1.0; 0.1; 0.01 ]

let replay_with_tau built trace ~tau =
  let params = Calib.sensitivity_params ~tau () in
  let samples = ref [] in
  let observe (o : Policies.observation) =
    if Policy.is_indirect o.Policies.kind then
      samples :=
        {
          step = o.Policies.step;
          under = o.Policies.under;
          over = o.Policies.over;
          propagated = o.Policies.propagated;
        }
        :: !samples
  in
  let policy = Policies.mitos ~observe params in
  let engine = Workload.replay ~policy built trace in
  (List.rev !samples, Metrics.of_engine engine)

let bucketize samples ~buckets =
  let arr = Array.of_list samples in
  let n = Array.length arr in
  if n = 0 || buckets <= 0 then []
  else begin
    let buckets = min buckets n in
    List.init buckets (fun b ->
        let lo = b * n / buckets in
        let hi = max lo (((b + 1) * n / buckets) - 1) in
        let count = hi - lo + 1 in
        let under = ref 0.0 and over = ref 0.0 in
        let prop = ref 0 and block = ref 0 in
        for i = lo to hi do
          under := !under +. arr.(i).under;
          over := !over +. arr.(i).over;
          if arr.(i).propagated then incr prop else incr block
        done;
        ( arr.(hi).step,
          !under /. float_of_int count,
          !over /. float_of_int count,
          !prop,
          !block ))
  end

let record_netbench () =
  let built = Mitos_workload.Netbench.build ~seed:Calib.netbench_seed () in
  let trace = Workload.record built in
  (built, trace)

let run ?recorded ?pool () =
  let r =
    Report.create ~title:"Fig. 7: marginal costs and IFP decisions over time"
  in
  let built, trace =
    match recorded with Some bt -> bt | None -> record_netbench ()
  in
  Report.textf r "Recorded netbench trace: %d instructions."
    (Mitos_replay.Trace.length trace);
  (* replay once per tau in parallel; render sequentially in tau order *)
  let replays =
    Mitos_parallel.Pool.map_opt pool
      ~f:(fun tau -> (tau, replay_with_tau built trace ~tau))
      taus
  in
  List.iter
    (fun (tau, (samples, summary)) ->
      let total = List.length samples in
      let propagated =
        List.length (List.filter (fun s -> s.propagated) samples)
      in
      Report.textf r
        "tau=%g: %d IFP decisions, %d propagated (%.1f%%), %d blocked."
        tau total propagated
        (100.0 *. float_of_int propagated /. float_of_int (max 1 total))
        (total - propagated);
      let t =
        Table.create
          ~header:
            [ "step"; "mean under-marg"; "mean over-marg"; "prop(+1)";
              "block(-1)" ]
          ()
      in
      List.iter
        (fun (step, under, over, prop, block) ->
          Table.add_row t
            [
              string_of_int step; Printf.sprintf "%.4g" under;
              Printf.sprintf "%.4g" over; string_of_int prop;
              string_of_int block;
            ])
        (bucketize samples ~buckets:12);
      Report.table r t;
      (* sparklines of the two series over the replay, the visual the
         paper's Fig. 7 conveys *)
      let over_series = Mitos_util.Timeseries.create ~name:"over" () in
      let decisions = Mitos_util.Timeseries.create ~name:"dec" () in
      List.iter
        (fun s ->
          Mitos_util.Timeseries.add over_series (float_of_int s.step) s.over;
          Mitos_util.Timeseries.add decisions (float_of_int s.step)
            (if s.propagated then 1.0 else -1.0))
        samples;
      Report.textf r "  over-marginal: %s"
        (Mitos_util.Timeseries.sparkline over_series 48);
      Report.textf r "  decisions:     %s  (high = propagated)"
        (Mitos_util.Timeseries.sparkline decisions 48);
      ignore summary)
    replays;
  Report.text r
    "Shape check vs. paper: over-marginal (mostly) increases with time; \
     tau=1 blocks most indirect flows (Fig. 7b); decreasing tau \
     propagates progressively more (Figs. 7c-d).";
  Report.finish r
