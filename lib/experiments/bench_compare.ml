module J = Mitos_util.Minijson

type direction = Lower_better | Higher_better

type row = {
  metric : string;
  direction : direction;
  old_value : float;
  new_value : float;
  change_pct : float;
  regressed : bool;
}

type report = {
  tolerance_pct : float;
  rows : row list;
  skipped : string list;
}

let gated_metrics =
  [
    ([ "alg1"; "direct_ns" ], Lower_better);
    ([ "alg1"; "fast_ns" ], Lower_better);
    ([ "alg2_batch8_space4"; "direct_ns" ], Lower_better);
    ([ "alg2_batch8_space4"; "fast_ns" ], Lower_better);
    ([ "engine_replay"; "records_per_sec" ], Higher_better);
    ([ "engine_replay"; "audit_records_per_sec" ], Higher_better);
    (* multicore-scaling rows (sharded state): parallel throughput,
       the fixed 8-task/4-domain pool speedup, and the occupancy
       balance of the 4-way sharded shadow. These compare like for
       like only when OLD and NEW come from the same class of runner
       (the CI baseline is regenerated whenever the runner changes). *)
    ([ "engine_replay"; "par_records_per_sec" ], Higher_better);
    ([ "pool"; "speedup_4x" ], Higher_better);
    ([ "shadow_shards"; "imbalance" ], Lower_better);
    ([ "net_decide_batch"; "par_requests_per_sec" ], Higher_better);
    (* decision-service round-trip over the loopback transport; a
       metric missing from an older baseline is skipped, not failed *)
    ([ "net_decide_batch"; "p50_ns" ], Lower_better);
    ([ "net_decide_batch"; "requests_per_sec" ], Higher_better);
    (* fleet federation: one scrape-and-merge round over 8 loopback
       nodes must stay cheap enough to run on a short interval *)
    ([ "fleet_scrape"; "mean_ns" ], Lower_better);
    (* burn-rate alert engine: one observe (store append + rule
       evaluation) must stay cheap enough to ride every server tick *)
    ([ "alert_eval"; "ns_per_observation" ], Lower_better);
    (* chaos fleet: sustained tenant events/s against 3 real nodes
       under the standard fault plan, and the deterministic virtual
       p99 of the same run (failover hops and slow windows priced by
       the latency model, so a routing regression moves it) *)
    ([ "fleet"; "requests_per_sec" ], Higher_better);
    ([ "fleet"; "p99_virtual_ns" ], Lower_better);
    (* profiling-layer rows: the instrumented-mutex fast path and GC
       allocation pressure of the replay hot path *)
    ([ "lock_contention"; "uncontended_pair_ns" ], Lower_better);
    ([ "gc_pressure"; "minor_words_per_record" ], Lower_better);
  ]

let regressions report = List.filter (fun r -> r.regressed) report.rows
let ok report = regressions report = []

let schema_marker = "mitos-bench-decisions/1"

let check_schema which j =
  match Option.bind (J.member "schema" j) J.to_string_opt with
  | Some s when s = schema_marker -> Ok ()
  | Some s ->
    Error (Printf.sprintf "%s: unexpected schema %S (want %S)" which s
             schema_marker)
  | None -> Error (Printf.sprintf "%s: missing \"schema\" marker" which)

let of_json ~tolerance_pct ~old_json ~new_json =
  if tolerance_pct < 0.0 then Error "tolerance must be non-negative"
  else
    let parse which s =
      match J.parse_result s with
      | Ok j -> Ok j
      | Error msg -> Error (Printf.sprintf "%s: %s" which msg)
    in
    match (parse "OLD" old_json, parse "NEW" new_json) with
    | Error e, _ | _, Error e -> Error e
    | Ok old_j, Ok new_j -> (
      match (check_schema "OLD" old_j, check_schema "NEW" new_j) with
      | Error e, _ | _, Error e -> Error e
      | Ok (), Ok () ->
        let rows, skipped =
          List.fold_left
            (fun (rows, skipped) (path, direction) ->
              let metric = String.concat "." path in
              let value j = Option.bind (J.path path j) J.to_float in
              match (value old_j, value new_j) with
              | Some old_value, Some new_value ->
                let change_pct =
                  if old_value = 0.0 then 0.0
                  else
                    let raw = (new_value -. old_value) /. old_value *. 100.0 in
                    match direction with
                    | Lower_better -> raw
                    | Higher_better -> -.raw
                in
                let row =
                  {
                    metric;
                    direction;
                    old_value;
                    new_value;
                    change_pct;
                    regressed = change_pct > tolerance_pct;
                  }
                in
                (row :: rows, skipped)
              | _ -> (rows, metric :: skipped))
            ([], []) gated_metrics
        in
        Ok { tolerance_pct; rows = List.rev rows; skipped = List.rev skipped })

let of_files ~tolerance_pct old_path new_path =
  let read path =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> Ok s
    | exception Sys_error msg -> Error msg
  in
  match (read old_path, read new_path) with
  | Error e, _ | _, Error e -> Error e
  | Ok old_json, Ok new_json -> of_json ~tolerance_pct ~old_json ~new_json

let render report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %14s %14s %9s\n" "metric" "old" "new" "change");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s %14.2f %14.2f %+8.1f%%%s\n" r.metric
           r.old_value r.new_value r.change_pct
           (if r.regressed then "  << REGRESSION" else "")))
    report.rows;
  List.iter
    (fun m ->
      Buffer.add_string buf (Printf.sprintf "%-40s (skipped: missing)\n" m))
    report.skipped;
  let regs = regressions report in
  Buffer.add_string buf
    (if regs = [] then
       Printf.sprintf "ok: no metric regressed beyond %.1f%%\n"
         report.tolerance_pct
     else
       Printf.sprintf "REGRESSION: %d metric(s) beyond %.1f%%: %s\n"
         (List.length regs) report.tolerance_pct
         (String.concat ", " (List.map (fun r -> r.metric) regs)));
  Buffer.contents buf
