open Mitos_tag
module Audit = Mitos_obs.Audit
module Registry = Mitos_obs.Registry

type tag_node = {
  tag : string;
  resident_bytes : int;
  propagated : int;
  blocked : int;
}

type site_node = { pc : int; flows : string list; decisions : int }
type edge = { e_tag : string; e_pc : int; e_propagated : int; e_blocked : int }
type eviction_edge = { incoming : string; victim : string; count : int }

type t = {
  tags : tag_node list;  (* sorted by tag *)
  sites : site_node list;  (* sorted by pc *)
  edges : edge list;  (* sorted by (tag, pc) *)
  evictions : eviction_edge list;  (* sorted by (incoming, victim) *)
}

(* mutable accumulation cells *)
type tag_acc = { mutable a_resident : int; mutable a_prop : int; mutable a_block : int }
type site_acc = { mutable s_flows : string list; mutable s_decisions : int }
type edge_acc = { mutable e_prop : int; mutable e_block : int }

let get tbl key fresh =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = fresh () in
    Hashtbl.add tbl key v;
    v

let build ?shadow records =
  let tags = Hashtbl.create 32 in
  let sites = Hashtbl.create 64 in
  let edges = Hashtbl.create 64 in
  let evictions = Hashtbl.create 16 in
  let tag_cell name =
    get tags name (fun () -> { a_resident = 0; a_prop = 0; a_block = 0 })
  in
  Array.iter
    (fun (r : Audit.record) ->
      match r.body with
      | Audit.Decision { flow; tags = decided; _ } ->
        let site =
          get sites r.pc (fun () -> { s_flows = []; s_decisions = 0 })
        in
        site.s_decisions <- site.s_decisions + 1;
        if flow <> "" && not (List.mem flow site.s_flows) then
          site.s_flows <- flow :: site.s_flows;
        List.iter
          (fun (td : Audit.tag_decision) ->
            let cell = tag_cell td.tag in
            let edge =
              get edges (td.tag, r.pc) (fun () -> { e_prop = 0; e_block = 0 })
            in
            match td.verdict with
            | Audit.Propagate ->
              cell.a_prop <- cell.a_prop + 1;
              edge.e_prop <- edge.e_prop + 1
            | Audit.Block ->
              cell.a_block <- cell.a_block + 1;
              edge.e_block <- edge.e_block + 1)
          decided
      | Audit.Eviction { victim; incoming; _ } ->
        ignore (tag_cell victim);
        ignore (tag_cell incoming);
        let n =
          Option.value ~default:0 (Hashtbl.find_opt evictions (incoming, victim))
        in
        Hashtbl.replace evictions (incoming, victim) (n + 1)
      | Audit.Selection _ | Audit.Note _ -> ())
    records;
  (* fold resident taint from the final shadow state, so the graph
     shows where each tag actually ended up living *)
  (match shadow with
  | None -> ()
  | Some shadow ->
    Shadow.iter_tainted shadow (fun _addr resident ->
        List.iter
          (fun tag ->
            let cell = tag_cell (Tag.to_string tag) in
            cell.a_resident <- cell.a_resident + 1)
          resident));
  {
    tags =
      Hashtbl.fold
        (fun tag (c : tag_acc) acc ->
          {
            tag;
            resident_bytes = c.a_resident;
            propagated = c.a_prop;
            blocked = c.a_block;
          }
          :: acc)
        tags []
      |> List.sort (fun a b -> String.compare a.tag b.tag);
    sites =
      Hashtbl.fold
        (fun pc (s : site_acc) acc ->
          {
            pc;
            flows = List.sort String.compare s.s_flows;
            decisions = s.s_decisions;
          }
          :: acc)
        sites []
      |> List.sort (fun a b -> Int.compare a.pc b.pc);
    edges =
      Hashtbl.fold
        (fun (tag, pc) (e : edge_acc) acc ->
          { e_tag = tag; e_pc = pc; e_propagated = e.e_prop; e_blocked = e.e_block }
          :: acc)
        edges []
      |> List.sort (fun a b ->
             match String.compare a.e_tag b.e_tag with
             | 0 -> Int.compare a.e_pc b.e_pc
             | c -> c);
    evictions =
      Hashtbl.fold
        (fun (incoming, victim) count acc -> { incoming; victim; count } :: acc)
        evictions []
      |> List.sort (fun a b -> compare (a.incoming, a.victim) (b.incoming, b.victim));
  }

(* -- DOT ------------------------------------------------------------- *)

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph mitos_taint {\n  rankdir=LR;\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"tag:%s\" [shape=ellipse,label=\"%s\\nresident=%d prop=%d \
            block=%d\"];\n"
           (dot_escape n.tag) (dot_escape n.tag) n.resident_bytes n.propagated
           n.blocked))
    t.tags;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  \"pc:%d\" [shape=box,label=\"pc %d\\n%s\"];\n" s.pc
           s.pc
           (dot_escape (String.concat "," s.flows))))
    t.sites;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"tag:%s\" -> \"pc:%d\" [label=\"prop %d / block %d\"];\n"
           (dot_escape e.e_tag) e.e_pc e.e_propagated e.e_blocked))
    t.edges;
  List.iter
    (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"tag:%s\" -> \"tag:%s\" [style=dashed,label=\"evict %d\"];\n"
           (dot_escape ev.incoming) (dot_escape ev.victim) ev.count))
    t.evictions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* -- JSON ------------------------------------------------------------ *)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"mitos-flowgraph/1\",\"tags\":[";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"tag\":%s,\"resident_bytes\":%d,\"propagated\":%d,\"blocked\":%d}"
           (Registry.json_string n.tag) n.resident_bytes n.propagated n.blocked))
    t.tags;
  Buffer.add_string buf "],\"sites\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"pc\":%d,\"flows\":[%s],\"decisions\":%d}" s.pc
           (String.concat "," (List.map Registry.json_string s.flows))
           s.decisions))
    t.sites;
  Buffer.add_string buf "],\"edges\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"tag\":%s,\"pc\":%d,\"propagated\":%d,\"blocked\":%d}"
           (Registry.json_string e.e_tag) e.e_pc e.e_propagated e.e_blocked))
    t.edges;
  Buffer.add_string buf "],\"evictions\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"incoming\":%s,\"victim\":%s,\"count\":%d}"
           (Registry.json_string ev.incoming)
           (Registry.json_string ev.victim)
           ev.count))
    t.evictions;
  Buffer.add_string buf "]}";
  Buffer.contents buf
