open Mitos_dift
module Attack = Mitos_workload.Attack
module Workload = Mitos_workload.Workload
module Table = Mitos_util.Table

type row = {
  variant : Attack.variant;
  faros : Metrics.summary;
  mitos : Metrics.summary;
}

type result = {
  rows : row list;
  time_improvement : float;
  wall_improvement : float;
  space_improvement : float;
  detection_improvement : float;
}

let run_under ?config ~policy variant =
  let built = Attack.build variant ~seed:Calib.attack_seed () in
  let engine = Workload.engine_of ?config ~policy built in
  Engine.attach engine (Workload.machine_of built);
  Metrics.measure_run engine

let run_variant variant =
  let faros = run_under ~policy:Policies.faros variant in
  let mitos =
    run_under ~config:Calib.attack_engine_config
      ~policy:(Calib.mitos_all_flows Calib.attack_params)
      variant
  in
  { variant; faros; mitos }

let ratio num den = if den = 0.0 then infinity else num /. den

let run_all ?pool () =
  let rows =
    Mitos_parallel.Pool.map_opt pool ~f:run_variant Attack.all_variants
  in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  {
    rows;
    time_improvement =
      ratio
        (sum (fun r -> float_of_int r.faros.Metrics.shadow_ops))
        (sum (fun r -> float_of_int r.mitos.Metrics.shadow_ops));
    wall_improvement =
      ratio
        (sum (fun r -> r.faros.Metrics.wall_seconds))
        (sum (fun r -> r.mitos.Metrics.wall_seconds));
    space_improvement =
      ratio
        (sum (fun r -> float_of_int r.faros.Metrics.footprint_bytes))
        (sum (fun r -> float_of_int r.mitos.Metrics.footprint_bytes));
    detection_improvement =
      ratio
        (sum (fun r -> float_of_int r.mitos.Metrics.detected_bytes))
        (sum (fun r -> float_of_int r.faros.Metrics.detected_bytes));
  }

let run ?pool () =
  let r =
    Report.create
      ~title:"Table II: FAROS vs MITOS on the in-memory-only attack"
  in
  let result = run_all ?pool () in
  let t =
    Table.create
      ~header:
        [ "shell"; "F ops"; "M ops"; "F space"; "M space"; "F det"; "M det" ]
      ()
  in
  List.iter
    (fun row ->
      Table.add_row t
        [
          Attack.variant_name row.variant;
          string_of_int row.faros.Metrics.shadow_ops;
          string_of_int row.mitos.Metrics.shadow_ops;
          string_of_int row.faros.Metrics.footprint_bytes;
          string_of_int row.mitos.Metrics.footprint_bytes;
          string_of_int row.faros.Metrics.detected_bytes;
          string_of_int row.mitos.Metrics.detected_bytes;
        ])
    result.rows;
  Report.table r t;
  Report.textf r
    "Improvements (FAROS/MITOS, averaged over the 6 shells): time (shadow \
     ops) %.2fx [paper 1.65x], space %.2fx [paper 1.11x], detected bytes \
     %.2fx more [paper 2.67x]."
    result.time_improvement result.space_improvement
    result.detection_improvement;
  (* the wall-clock ratio stays in [result] but is not printed: report
     output must be deterministic so parallel and sequential runs diff
     clean, and shadow ops already measure time deterministically *)
  ignore result.wall_improvement;
  Report.finish r
