open Mitos_dift
module Workload = Mitos_workload.Workload
module Table = Mitos_util.Table

let alphas = [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ]

type point = {
  alpha : float;
  fairness : Mitos.Fairness.report;
  propagated : int;
  blocked : int;
}

let sweep ?pool built trace =
  Mitos_parallel.Pool.map_opt pool
    ~f:(fun alpha ->
      let params = Calib.sensitivity_params ~alpha () in
      let engine = Workload.replay ~policy:(Policies.mitos params) built trace in
      let c = Engine.counters engine in
      {
        alpha;
        fairness = Mitos.Fairness.of_stats (Engine.stats engine);
        propagated = c.Engine.ifp_propagated;
        blocked = c.Engine.ifp_blocked;
      })
    alphas

let run ?recorded ?pool () =
  let r = Report.create ~title:"Fig. 8: alpha vs. fairness (tag balancing)" in
  let built, trace =
    match recorded with Some bt -> bt | None -> Fig7.record_netbench ()
  in
  let points = sweep ?pool built trace in
  let t =
    Table.create
      ~header:[ "alpha"; "MSE (fairness)"; "Jain"; "entropy"; "ifp+"; "ifp-" ]
      ()
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%g" p.alpha;
          Printf.sprintf "%.4g" p.fairness.Mitos.Fairness.mse;
          Printf.sprintf "%.3f" p.fairness.Mitos.Fairness.jain;
          Printf.sprintf "%.3f" p.fairness.Mitos.Fairness.entropy_norm;
          string_of_int p.propagated;
          string_of_int p.blocked;
        ])
      points;
  Report.table r t;
  (match (points, List.rev points) with
  | first :: _, last :: _ ->
    Report.textf r
      "Tag-balancing improvement (MSE ratio alpha=%g vs alpha=%g): %.2fx \
       (paper reports up to 2x)."
      first.alpha last.alpha
      (Mitos.Fairness.improvement ~baseline:first.fairness last.fairness)
  | _ -> ());
  Report.finish r
