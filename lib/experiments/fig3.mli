(** Fig. 3: the shapes of the two cost kernels.

    (a) the α-fair undertainting kernel [n^(1-α)/(α-1)] for several α
    — monotonically decreasing in n, steeper for larger α;
    (b) the β-steep overtainting kernel [(P/N_R)^β] for several β —
    monotonically increasing, steeper for larger β. *)

val alphas : float list
val betas : float list

val under_series : alpha:float -> (float * float) list
(** (n, cost) for n = 1..20. *)

val over_series : beta:float -> (float * float) list
(** (pollution fraction, cost) for fractions 0.05..1. *)

val run : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
