(** The conformance table: the litmus suite under every named policy.

    Rows are flow-class litmus cases, columns are policies, cells mark
    whether taint crossed. This is the one-page answer to "what does
    each policy actually propagate?" — and the expected shape is
    checked by the test suite, so the table doubles as living
    documentation. *)

val policies : unit -> (string * Mitos_dift.Policy.t) list

val run : ?pool:Mitos_parallel.Pool.t -> unit -> Report.section
(** [pool] runs one litmus column per task. *)
