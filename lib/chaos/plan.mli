(** The chaos fault-plan DSL.

    A plan is a list of fault events against a simulated fleet, written
    one per line (['#'] comments and blank lines ignored; [';'] also
    separates events on one line):

    {v
    kill@t=5s node=2
    restart@t=9s node=2
    slow@t=8s until=12s node=1 delay=50ms
    partition@t=10s until=18s node=2
    corrupt@rate=0.001
    drop@rate=0.01 node=0 t=2s until=20s
    truncate@rate=0.005
    oversize@rate=0.001
    v}

    Each event is [NAME@key=value key=value ...]. Durations accept
    [5s], [50ms], [200us] or a bare number of seconds; [t] and [from]
    are synonyms for a window start; [until] defaults to the end of the
    scenario ([inf]); [node] is an index or [all] (the default for the
    rate faults); [rate] is a per-request probability.

    Semantics (applied by {!Gate} and the {!Fleet} driver):
    - [kill]/[restart]: the node's real server is stopped (its
      estimator state is {e lost}) and later recreated; the driver
      re-syncs the fresh estimator through the ordinary publish path.
    - [slow]: every request through the node accrues [delay] of
      {e virtual} latency while the window is open.
    - [partition]: the node is unreachable — and tenants homed on it
      do not fail over (a network split, unlike a crash, cuts the
      whole region); their publishes are deferred and re-synced when
      the window closes.
    - [corrupt]/[drop]/[truncate]/[oversize]: per-request frame faults
      at the given probability — request bodies mangled so the strict
      decoders must answer with typed errors, attempts dropped before
      reaching the server, replies cut in half, replies padded past
      the client's max-frame bound.

    Parsing and rendering round-trip: [to_string] is canonical and
    [parse (to_string p)] re-reads it, which is how plans are echoed
    byte-identically into the chaos report. *)

type target = All_nodes | Node of int

type event =
  | Kill of { at : float; node : int }
  | Restart of { at : float; node : int }
  | Slow of { from_ : float; until : float; target : target; delay : float }
  | Partition of { from_ : float; until : float; node : int }
  | Corrupt of { rate : float; target : target; from_ : float; until : float }
  | Drop of { rate : float; target : target; from_ : float; until : float }
  | Truncate of { rate : float; target : target; from_ : float; until : float }
  | Oversize of { rate : float; target : target; from_ : float; until : float }

type t = event list
(** In file order. *)

val empty : t

val parse : string -> (t, string) result
(** Whole plan text; the error names the offending line. *)

val parse_event : string -> (event, string) result

val to_string : t -> string
(** Canonical: one event per line, every field explicit, trailing
    newline when non-empty. *)

val event_to_string : event -> string

val validate : nodes:int -> duration:float -> t -> (unit, string) result
(** Node indices in range, rates in [0,1], windows ordered, every
    [restart] preceded by a [kill] of the same node (and vice versa no
    double kill without restart), event times within the scenario. *)

(** {1 Queries} (what the gate and driver evaluate per request) *)

val slow_delay : t -> node:int -> at:float -> float
(** Summed [delay] of the slow windows open at [at] for the node. *)

val partitioned : t -> node:int -> at:float -> bool

val killed : t -> node:int -> at:float -> bool
(** Inside a kill..restart window (a kill with no later restart is an
    open window). *)

val down : t -> node:int -> at:float -> bool
(** {!killed} or {!partitioned} — used by the judge to classify a
    retry exhaustion as expected. *)

val rate :
  t ->
  kind:[ `Corrupt | `Drop | `Truncate | `Oversize ] ->
  node:int ->
  at:float ->
  float
(** Summed active rates of that fault kind for the node, capped at
    1. *)

val expects_outage_alert : t -> duration:float -> bool
(** Whether the plan contains a kill or partition window that both
    starts and heals early enough for the burn-rate outage alert to
    fire {e and} resolve within the scenario — the judge's default
    alert expectation. *)
