module Rng = Mitos_util.Rng
module Tag = Mitos_tag.Tag
module Tag_type = Mitos_tag.Tag_type
module Transport = Mitos_net.Transport
module Client = Mitos_net.Client
module Server = Mitos_net.Server
module Wire = Mitos_net.Wire
module Registry = Mitos_obs.Registry
module Alerts = Mitos_obs.Alerts
module Audit = Mitos_obs.Audit
module Attack = Mitos_workload.Attack
module Workload = Mitos_workload.Workload
module Engine = Mitos_dift.Engine
module Metrics = Mitos_dift.Metrics
module Policies = Mitos_dift.Policies
module Calib = Mitos_experiments.Calib

type transport = Mem | Tcp

type config = {
  nodes : int;
  estimator_slots : int;
  transport : transport;
  workers : int;
  gen : Tenantgen.config;
  batch : int;
  candidates : int;
  space : int;
  client_retries : int;
  tick_every : float;
}

let default_config =
  {
    nodes = 3;
    estimator_slots = 8;
    transport = Mem;
    workers = 2;
    gen = Tenantgen.default_config;
    batch = 8;
    candidates = 6;
    space = 4;
    client_retries = 1;
    tick_every = 1.0;
  }

type attack_row = {
  attack_at : float;
  attack_tenant : int;
  attack_node : int;
  variant : Attack.variant;
  detected : bool;
  tainted_bytes : int;
  oracle_detected : bool;
  oracle_tainted_bytes : int;
}

type exhaustion = {
  ex_at : float;
  ex_tenant : int;
  ex_node : int;
  ex_expected : bool;
  ex_class : [ `Refused | `Timeout | `Unknown ];
}

type node_sync = {
  sync_node : int;
  intended : float;
  final : float option;
}

type outcome = {
  events_total : int;
  decide_events : int;
  decisions : int;
  publishes : int;
  deferred_publishes : int;
  resync_publishes : int;
  remote_rejects : int;
  wire_rejects : int;
  bad_replies : int;
  failovers : int;
  ping_rejects : int;
  kills : int;
  restarts : int;
  attacks : attack_row list;
  exhaustions : exhaustion list;
  injected : Gate.counts;
  latencies_ns : float array;
  client_retries_total : int;
  client_exhausted_total : int;
  syncs : node_sync list;
  incidents : Alerts.incident list;
  alerts_fired : int;
  alerts_resolved : int;
  alert_quiet_at_end : bool;
  ticks : int;
  down_ticks : int;
  audit : Audit.t;
  wall_seconds : float;
}

let outage_alert_name = "fleet_outage"

(* Loopback names must be unique across sequential fleets in one
   process; the counter never reaches any report field. *)
let fleet_counter = ref 0

let client_max_frame = 65536

(* The virtual latency model: a fixed service floor, per-decision
   marginal cost, any slow-window delay the gates accrued, and a
   reconnect penalty per failover hop. Entirely virtual — wall time
   never enters. *)
let base_ns = 20_000.0
let per_decision_ns = 1_500.0
let failover_ns = 300_000.0

let quantile_ns sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* ---------- nodes ---------- *)

type node = {
  idx : int;
  up_name : string;  (* mem-mode upstream loopback name *)
  mutable server : Server.t option;
  mutable listener : Server.listener option;
  mutable upstream_conn : Transport.conn option;  (* tcp mode *)
  mutable gate : Gate.t option;
  mutable client : Client.t option;
}

type st = {
  cfg : config;
  plan : Plan.t;
  nodes : node array;
  clock : float ref;
  registry : Registry.t;
  audit : Audit.t;
  alerts : Alerts.t;
  mix : Rng.t array;
  intended : float option array array;  (* node -> slot -> last value *)
  mutable last_global : float;
  oracle : (Attack.variant * int, Metrics.summary) Hashtbl.t;
  (* counters *)
  mutable decide_events : int;
  mutable decisions : int;
  mutable publishes : int;
  mutable deferred : int;
  mutable resyncs : int;
  mutable remote_rejects : int;
  mutable wire_rejects : int;
  mutable bad_replies : int;
  mutable failovers : int;
  mutable ping_rejects : int;
  mutable kills : int;
  mutable restarts : int;
  mutable attacks : attack_row list;
  mutable exhaustions : exhaustion list;
  mutable latencies : float list;
  mutable ticks : int;
  mutable down_ticks : int;
  mutable fired : int;
  mutable resolved : int;
}

let server_config cfg idx =
  {
    Server.default_config with
    workers = (match cfg.transport with Mem -> 0 | Tcp -> cfg.workers);
    nodes = cfg.estimator_slots;
    node_id = Printf.sprintf "chaos%d" idx;
  }

let start_node st node =
  let server = Server.create ~config:(server_config st.cfg node.idx) ~params:Calib.attack_params () in
  let endpoint =
    match st.cfg.transport with
    | Mem -> Transport.Memory node.up_name
    | Tcp -> Transport.Tcp { host = "127.0.0.1"; port = 0 }
  in
  let listener = Server.start server endpoint in
  node.server <- Some server;
  node.listener <- Some listener

let stop_node st node =
  (match node.upstream_conn with
  | Some c ->
      Transport.close c;
      node.upstream_conn <- None
  | None -> ());
  (match node.listener with
  | Some l ->
      Server.stop l;
      node.listener <- None
  | None -> ());
  node.server <- None;
  ignore st

(* What the gate calls to reach the real node. In mem mode this is a
   dynamic loopback lookup (Server.stop unregisters it, so a killed
   node reads as None); in tcp mode a lazily (re)dialled socket. Both
   report "down" the same way, so the two transports inject
   byte-identical fault streams. *)
let upstream_of st node () =
  match (node.server, node.listener) with
  | None, _ | _, None -> None
  | Some _, Some listener -> (
      match st.cfg.transport with
      | Mem -> Transport.Loopback.handler node.up_name
      | Tcp ->
          Some
            (fun body ->
              let conn =
                match node.upstream_conn with
                | Some c -> c
                | None -> (
                    match Transport.connect (Server.endpoint listener) with
                    | Ok c ->
                        node.upstream_conn <- Some c;
                        c
                    | Error msg -> raise (Gate.Down msg))
              in
              let sever msg =
                Transport.close conn;
                node.upstream_conn <- None;
                raise (Gate.Down msg)
              in
              match Transport.send conn body with
              | Error msg -> sever msg
              | Ok () -> (
                  match Transport.recv conn with
                  | Ok reply -> reply
                  | Error e -> sever (Wire.error_to_string e))))

(* ---------- request helpers ---------- *)

let gen_tag rng = Tag.make (Rng.pick_list rng Tag_type.all) (Rng.int rng 10_000)

let gen_decide rng cfg : Wire.decide_request =
  let n = 1 + Rng.int rng (max 1 cfg.candidates) in
  let candidates = List.init n (fun _ -> (gen_tag rng, Rng.int rng 64)) in
  {
    space = Rng.int rng (cfg.space + 1);
    pollution = Rng.float rng 1000.0;
    candidates;
  }

let home_of st tenant = tenant mod st.cfg.nodes
let slot_of st tenant = tenant / st.cfg.nodes mod st.cfg.estimator_slots

let client_of st n =
  match st.nodes.(n).client with
  | Some c -> c
  | None -> assert false (* driver clients live for the whole run *)

let take_delays st =
  Array.fold_left
    (fun acc node ->
      match node.gate with Some g -> acc +. Gate.take_delay g | None -> acc)
    0.0 st.nodes

let classify_exhaustion last = Transport.connect_failure last

let record_exhaustion st ~tenant ~node ~expected ~last =
  st.exhaustions <-
    {
      ex_at = !(st.clock);
      ex_tenant = tenant;
      ex_node = node;
      ex_expected = expected;
      ex_class = classify_exhaustion last;
    }
    :: st.exhaustions;
  Audit.record_note st.audit
    (Printf.sprintf "chaos exhausted tenant=%d node=%d expected=%b" tenant node
       expected)

(* Failover order for a tenant: home first, then the ring. *)
let ring st home = List.init st.cfg.nodes (fun i -> (home + i) mod st.cfg.nodes)

let all_down st ~at =
  List.for_all
    (fun n -> Plan.down st.plan ~node:n ~at)
    (List.init st.cfg.nodes Fun.id)

(* ---------- event execution ---------- *)

let run_decide st ev =
  let tenant = ev.Tenantgen.tenant in
  let home = home_of st tenant in
  let at = !(st.clock) in
  st.decide_events <- st.decide_events + 1;
  let reqs = List.init st.cfg.batch (fun _ -> gen_decide st.mix.(tenant) st.cfg) in
  let finish ~hops =
    let delay = take_delays st in
    let ns =
      base_ns
      +. (per_decision_ns *. float_of_int st.cfg.batch)
      +. (delay *. 1e9)
      +. (failover_ns *. float_of_int hops)
    in
    st.latencies <- ns :: st.latencies
  in
  if Plan.partitioned st.plan ~node:home ~at then begin
    (* a partition cuts the tenant's whole region: no failover *)
    match Client.decide (client_of st home) reqs with
    | Ok replies ->
        st.decisions <- st.decisions + List.length replies;
        finish ~hops:0
    | Error (Remote _) -> st.remote_rejects <- st.remote_rejects + 1
    | Error (Wire _) -> st.wire_rejects <- st.wire_rejects + 1
    | Error (Bad_reply _) -> st.bad_replies <- st.bad_replies + 1
    | Error (Retries_exhausted { last; _ }) | Error (Connect last) ->
        record_exhaustion st ~tenant ~node:home ~expected:true ~last
    | Error Closed -> assert false
  end
  else begin
    (* two full passes over the ring before giving up, so a stray
       injected drop on the failover target cannot fake an outage *)
    let order = ring st home @ ring st home in
    let rec go hops last = function
      | [] ->
          record_exhaustion st ~tenant ~node:home
            ~expected:(all_down st ~at) ~last
      | n :: rest -> (
          match Client.decide (client_of st n) reqs with
          | Ok replies ->
              st.decisions <- st.decisions + List.length replies;
              st.failovers <- st.failovers + min hops 1;
              finish ~hops
          | Error (Remote _) -> st.remote_rejects <- st.remote_rejects + 1
          | Error (Wire _) -> st.wire_rejects <- st.wire_rejects + 1
          | Error (Bad_reply _) -> st.bad_replies <- st.bad_replies + 1
          | Error (Retries_exhausted { last; _ }) | Error (Connect last) ->
              go (hops + 1) last rest
          | Error Closed -> assert false)
    in
    go 0 "" order
  end

(* Publishes stay home: the slot lives on the home node, so there is
   nowhere to fail over to. While the home node is down per the plan
   the value is deferred — the resync on heal replays the latest
   intended value through the same publish path. *)
let publish_attempts = 6

let run_publish st ev value =
  let tenant = ev.Tenantgen.tenant in
  let home = home_of st tenant in
  let slot = slot_of st tenant in
  let at = !(st.clock) in
  st.intended.(home).(slot) <- Some value;
  if Plan.down st.plan ~node:home ~at then st.deferred <- st.deferred + 1
  else begin
    let rec go attempt last =
      if attempt >= publish_attempts then
        record_exhaustion st ~tenant ~node:home ~expected:false ~last
      else
        match Client.publish (client_of st home) ~node:slot value with
        | Ok _ -> st.publishes <- st.publishes + 1
        | Error (Remote _) ->
            st.remote_rejects <- st.remote_rejects + 1;
            go (attempt + 1) last
        | Error (Wire _) ->
            st.wire_rejects <- st.wire_rejects + 1;
            go (attempt + 1) last
        | Error (Bad_reply _) ->
            st.bad_replies <- st.bad_replies + 1;
            go (attempt + 1) last
        | Error (Retries_exhausted { last; _ }) | Error (Connect last) ->
            go (attempt + 1) last
        | Error Closed -> assert false
    in
    go 0 "";
    ignore (take_delays st)
  end

(* Re-publish every slot the driver has intent for — the restart and
   partition-heal path. Goes through the ordinary wire publish, not a
   backdoor into the estimator. *)
let resync st node reason =
  let replayed = ref 0 in
  for slot = 0 to st.cfg.estimator_slots - 1 do
    match st.intended.(node).(slot) with
    | None -> ()
    | Some value ->
        let rec go attempt =
          if attempt >= publish_attempts then ()
          else
            match Client.publish (client_of st node) ~node:slot value with
            | Ok _ ->
                incr replayed;
                st.resyncs <- st.resyncs + 1
            | Error _ -> go (attempt + 1)
        in
        go 0
  done;
  ignore (take_delays st);
  Audit.record_note st.audit
    (Printf.sprintf "chaos resync node=%d slots=%d reason=%s" node !replayed
       reason)

let read_global st ~home =
  let order = ring st home @ ring st home in
  let rec go = function
    | [] -> (st.last_global, home)
    | n :: rest -> (
        match Client.global (client_of st n) with
        | Ok g ->
            st.last_global <- g;
            (g, n)
        | Error _ -> go rest)
  in
  let r = go order in
  ignore (take_delays st);
  r

let oracle_for st variant seed =
  match Hashtbl.find_opt st.oracle (variant, seed) with
  | Some s -> s
  | None ->
      let built = Attack.build variant ~seed () in
      let engine = Workload.engine_of ~policy:Policies.propagate_all built in
      Engine.attach engine (Workload.machine_of built);
      let s = Metrics.measure_run engine in
      Hashtbl.add st.oracle (variant, seed) s;
      s

let run_attack st ev variant seed =
  let tenant = ev.Tenantgen.tenant in
  let home = home_of st tenant in
  let g, from_node = read_global st ~home in
  let built = Attack.build variant ~seed () in
  let policy =
    Policies.mitos ~name:"chaos-mitos" ~handle_direct:true
      ~pollution_source:(fun _ -> g)
      Calib.attack_params
  in
  let engine =
    Workload.engine_of ~config:Calib.attack_engine_config ~policy built
  in
  Engine.attach engine (Workload.machine_of built);
  let summary = Metrics.measure_run engine in
  let oracle = oracle_for st variant seed in
  let row =
    {
      attack_at = !(st.clock);
      attack_tenant = tenant;
      attack_node = from_node;
      variant;
      detected = summary.Metrics.detected_bytes > 0;
      tainted_bytes = summary.Metrics.tainted_bytes;
      oracle_detected = oracle.Metrics.detected_bytes > 0;
      oracle_tainted_bytes = oracle.Metrics.tainted_bytes;
    }
  in
  st.attacks <- row :: st.attacks;
  Audit.record_note st.audit
    (Printf.sprintf
       "chaos attack tenant=%d node=%d variant=%s detected=%b global=%s" tenant
       from_node (Attack.variant_name variant) row.detected
       (Registry.fmt_value g))

let run_tick st ~at =
  st.ticks <- st.ticks + 1;
  let down = ref 0 in
  Array.iter
    (fun node ->
      match node.client with
      | None -> incr down
      | Some client -> (
          match Client.ping client with
          | Ok () -> ()
          | Error (Retries_exhausted _ | Connect _) -> incr down
          | Error (Remote _ | Wire _ | Bad_reply _) ->
              (* an injected frame fault ate the ping; the node answered
                 something, so it is up *)
              st.ping_rejects <- st.ping_rejects + 1
          | Error Closed -> incr down))
    st.nodes;
  ignore (take_delays st);
  if !down > 0 then st.down_ticks <- st.down_ticks + 1;
  Alerts.observe st.alerts ~at [ ("chaos_nodes_down", float_of_int !down) ]

(* ---------- lifecycle actions ---------- *)

type action = Akill of int | Arestart of int | Aheal of int

let actions_of plan =
  List.concat_map
    (function
      | Plan.Kill { at; node } -> [ (at, Akill node) ]
      | Plan.Restart { at; node } -> [ (at, Arestart node) ]
      | Plan.Partition { until; node; _ } when until < infinity ->
          [ (until, Aheal node) ]
      | _ -> [])
    plan
  |> List.stable_sort compare

let run_action st = function
  | Akill n ->
      st.kills <- st.kills + 1;
      stop_node st st.nodes.(n);
      Audit.record_note st.audit (Printf.sprintf "chaos kill node=%d" n)
  | Arestart n ->
      st.restarts <- st.restarts + 1;
      start_node st st.nodes.(n);
      Audit.record_note st.audit (Printf.sprintf "chaos restart node=%d" n);
      resync st n "restart"
  | Aheal n -> resync st n "partition-heal"

(* ---------- the run ---------- *)

let outage_rule =
  Alerts.rule ~name:outage_alert_name ~budget:0.25
    ~windows:
      [ { Alerts.fast = 3.0; slow = 6.0; burn = 1.0; pair_severity = Alerts.Page } ]
    ~for_:2.0 ~keep_firing:2.0 ~signal:"chaos_nodes_down"
    ~cmp:Mitos_obs.Health.Le ~objective:0.0 ()

let ( let* ) = Result.bind

let validate cfg ~plan =
  let* () = Tenantgen.validate cfg.gen in
  let* () =
    if cfg.nodes <= 0 then Error "nodes must be positive"
    else if cfg.estimator_slots <= 0 then Error "estimator_slots must be positive"
    else if cfg.batch <= 0 then Error "batch must be positive"
    else if cfg.tick_every <= 0.0 then Error "tick_every must be positive"
    else if cfg.client_retries < 0 then Error "client_retries must be >= 0"
    else Ok ()
  in
  Plan.validate ~nodes:cfg.nodes ~duration:cfg.gen.Tenantgen.duration plan

let teardown st =
  Array.iter
    (fun node ->
      (match node.client with
      | Some c ->
          Client.close c;
          node.client <- None
      | None -> ());
      (match node.gate with
      | Some g ->
          Gate.close g;
          node.gate <- None
      | None -> ());
      stop_node st node)
    st.nodes

let run cfg ~plan =
  let* () = validate cfg ~plan in
  incr fleet_counter;
  let fleet_id = !fleet_counter in
  let registry = Registry.create () in
  let st =
    {
      cfg;
      plan;
      nodes =
        Array.init cfg.nodes (fun idx ->
            {
              idx;
              up_name = Printf.sprintf "chaos%d-n%d" fleet_id idx;
              server = None;
              listener = None;
              upstream_conn = None;
              gate = None;
              client = None;
            });
      clock = ref 0.0;
      registry;
      audit = Audit.create ();
      alerts = Alerts.create ~rules:[ outage_rule ] ();
      mix = Tenantgen.mix_rngs cfg.gen;
      intended = Array.make_matrix cfg.nodes cfg.estimator_slots None;
      last_global = 0.0;
      oracle = Hashtbl.create 8;
      decide_events = 0;
      decisions = 0;
      publishes = 0;
      deferred = 0;
      resyncs = 0;
      remote_rejects = 0;
      wire_rejects = 0;
      bad_replies = 0;
      failovers = 0;
      ping_rejects = 0;
      kills = 0;
      restarts = 0;
      attacks = [];
      exhaustions = [];
      latencies = [];
      ticks = 0;
      down_ticks = 0;
      fired = 0;
      resolved = 0;
    }
  in
  let wall_start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> teardown st)
    (fun () ->
      (* bring the fleet up: servers, gates in front of them, and one
         driver client per gate (tenants share them; the tenant label
         travels in the audit notes) *)
      Array.iter (fun node -> start_node st node) st.nodes;
      Array.iter
        (fun node ->
          node.gate <-
            Some
              (Gate.create ~node:node.idx
                 ~name:(Printf.sprintf "chaos%d-g%d" fleet_id node.idx)
                 ~plan ~seed:cfg.gen.Tenantgen.seed
                 ~now:(fun () -> !(st.clock))
                 ~upstream:(upstream_of st node) ~client_max_frame ()))
        st.nodes;
      let* () =
        Array.fold_left
          (fun acc node ->
            let* () = acc in
            let gate = Option.get node.gate in
            match
              Client.connect ~retries:cfg.client_retries
                ~max_frame:client_max_frame ~registry (Gate.endpoint gate)
            with
            | Ok c ->
                node.client <- Some c;
                Ok ()
            | Error e ->
                Error
                  (Printf.sprintf "node %d client: %s" node.idx
                     (Client.error_to_string e)))
          (Ok ()) st.nodes
      in
      let schedule = Tenantgen.schedule cfg.gen in
      let actions = ref (actions_of plan) in
      let duration = cfg.gen.Tenantgen.duration in
      let next_tick = ref cfg.tick_every in
      (* merge the three time-ordered streams; at equal times lifecycle
         actions run first, then the alert tick, then traffic *)
      let drain_until t =
        let continue = ref true in
        while !continue do
          let ta = match !actions with (ta, _) :: _ -> ta | [] -> infinity in
          let tt = if !next_tick <= duration then !next_tick else infinity in
          if ta <= tt && ta <= t then begin
            st.clock := ta;
            (match !actions with
            | (_, act) :: rest ->
                actions := rest;
                run_action st act
            | [] -> ())
          end
          else if tt < ta && tt <= t then begin
            st.clock := tt;
            run_tick st ~at:tt;
            next_tick := !next_tick +. cfg.tick_every
          end
          else continue := false
        done
      in
      Array.iter
        (fun ev ->
          drain_until ev.Tenantgen.at;
          st.clock := ev.Tenantgen.at;
          match ev.Tenantgen.kind with
          | Tenantgen.Decide -> run_decide st ev
          | Tenantgen.Publish value -> run_publish st ev value
          | Tenantgen.Attack (variant, seed) -> run_attack st ev variant seed)
        schedule;
      drain_until duration;
      st.clock := duration;
      (* final per-node reads for the re-sync verdict *)
      let syncs =
        List.init cfg.nodes (fun n ->
            let intended =
              Array.fold_left
                (fun acc v -> acc +. Option.value v ~default:0.0)
                0.0 st.intended.(n)
            in
            let final =
              if st.nodes.(n).server = None then None
              else
                let rec go attempt =
                  if attempt >= publish_attempts then None
                  else
                    match Client.global (client_of st n) with
                    | Ok g -> Some g
                    | Error _ -> go (attempt + 1)
                in
                go 0
            in
            { sync_node = n; intended; final })
      in
      let incidents = Alerts.incidents st.alerts in
      List.iter
        (fun i ->
          match i.Alerts.transition with
          | Alerts.To_firing -> st.fired <- st.fired + 1
          | Alerts.To_resolved -> st.resolved <- st.resolved + 1
          | _ -> ())
        incidents;
      let latencies = Array.of_list (List.rev st.latencies) in
      Array.sort compare latencies;
      let injected =
        let total = Gate.zero_counts () in
        Array.iter
          (fun node ->
            match node.gate with
            | None -> ()
            | Some g ->
                let c = Gate.counts g in
                total.Gate.calls <- total.Gate.calls + c.Gate.calls;
                total.Gate.drops <- total.Gate.drops + c.Gate.drops;
                total.Gate.corrupt_requests <-
                  total.Gate.corrupt_requests + c.Gate.corrupt_requests;
                total.Gate.corrupt_replies <-
                  total.Gate.corrupt_replies + c.Gate.corrupt_replies;
                total.Gate.truncated_replies <-
                  total.Gate.truncated_replies + c.Gate.truncated_replies;
                total.Gate.oversized_replies <-
                  total.Gate.oversized_replies + c.Gate.oversized_replies;
                total.Gate.refusals <- total.Gate.refusals + c.Gate.refusals)
          st.nodes;
        total
      in
      let counter name =
        Registry.counter_value (Registry.counter st.registry name)
      in
      Ok
        {
          events_total = Array.length schedule;
          decide_events = st.decide_events;
          decisions = st.decisions;
          publishes = st.publishes;
          deferred_publishes = st.deferred;
          resync_publishes = st.resyncs;
          remote_rejects = st.remote_rejects;
          wire_rejects = st.wire_rejects;
          bad_replies = st.bad_replies;
          failovers = st.failovers;
          ping_rejects = st.ping_rejects;
          kills = st.kills;
          restarts = st.restarts;
          attacks = List.rev st.attacks;
          exhaustions = List.rev st.exhaustions;
          injected;
          latencies_ns = latencies;
          client_retries_total = counter "mitos_net_retries_total";
          client_exhausted_total = counter "mitos_net_retries_exhausted_total";
          syncs;
          incidents;
          alerts_fired = st.fired;
          alerts_resolved = st.resolved;
          alert_quiet_at_end =
            (match Alerts.phase_of st.alerts outage_alert_name with
            | Some Alerts.Inactive | None -> true
            | Some _ -> false);
          ticks = st.ticks;
          down_ticks = st.down_ticks;
          audit = st.audit;
          wall_seconds = Unix.gettimeofday () -. wall_start;
        })
