(** Scenario judging: run a chaos fleet and score it against SLOs.

    A {e scenario} bundles a {!Fleetsim.config}, a fault {!Plan} and
    the SLO bar to clear. The judge runs the fleet and renders a
    verdict over:

    - {b recall}: every injected attack the propagate-all oracle could
      detect, the fleet-fed MITOS policy also detected;
    - {b over-taint}: no attack run tainted more bytes than its
      propagate-all oracle;
    - {b p99 latency}: virtual p99 under the bound;
    - {b retries}: zero {e unexpected} retry exhaustions (an
      exhaustion is expected only when the plan had the tenant's path
      inside a kill or partition window);
    - {b alerts}: the fleet-outage burn-rate alert fired {e and}
      resolved when the plan warrants it, stayed silent otherwise, and
      is quiet at the end either way;
    - {b re-sync}: every node alive at the end reports an estimator
      global equal (to 1e-6) to the driver's intended value — restarts
      and partition heals included.

    {!to_json} is canonical and wall-clock-free: two runs of the same
    scenario produce byte-identical reports (the determinism contract
    the test suite enforces); {!render} is the human view and carries
    the wall-clock numbers. *)

type slo = {
  min_recall : float;
  max_over_taint : float;  (** tainted / oracle-tainted ratio bound *)
  max_p99_ns : float;
  expect_alert : bool option;
      (** [None] derives the expectation from the plan
          ({!Plan.expects_outage_alert}) *)
}

val default_slo : slo
(** Recall 1.0, over-taint 1.0, p99 50ms virtual, alert expectation
    derived from the plan. *)

type scenario = {
  scenario_name : string;
  config : Fleetsim.config;
  plan : Plan.t;
  slo : slo;
}

type check = { check_name : string; ok : bool; detail : string }

type verdict = Pass | Violation

type report = {
  scenario : scenario;
  outcome : Fleetsim.outcome;
  checks : check list;
  verdict : verdict;
}

val run : scenario -> (report, string) result

val exit_code : report -> int
(** 0 on [Pass], 1 on [Violation] (setup errors exit 2 at the CLI). *)

val to_json : report -> string
(** The deterministic JSON report (schema ["mitos-chaos-report/1"]),
    rendered with {!Mitos_util.Minijson.render}; trailing newline. *)

val render : report -> string
(** Human summary: scenario, traffic, injections, SLO table, verdict.
    Includes the greppable lines ["detection recall: ..."],
    ["unexpected retries exhausted: N"] and ["verdict: PASS|FAIL"]
    the CI chaos-smoke job asserts on. *)

(** {1 Bench} *)

val bench_row : report -> Mitos_util.Minijson.t
(** The ["fleet"] row for [BENCH_decisions.json]: fleet shape, events,
    sustained wall-clock events/s and the deterministic virtual p99 —
    the two gated by [bench compare]. *)

val merge_into_bench_json : path:string -> report -> unit
(** Read the bench JSON at [path] (creating a fresh document when the
    file is missing), replace or append the ["fleet"] object, and
    rewrite the file deterministically — the same contract as
    {!Mitos_net.Loadgen.merge_into_bench_json}. Raises [Failure] on an
    unparsable existing file. *)

(** {1 Presets} *)

val presets : (string * string) list
(** [(name, one-line description)] in menu order: [steady],
    [kill-restart], [partition], [frame-fuzz], [ci], [bench]. *)

val preset : string -> scenario option
(** The named preset scenario. *)
