(** Fault-injecting transport gate.

    Every tenant client in the chaos fleet connects to a {e gate} — a
    loopback transport endpoint standing in front of one real node —
    rather than to the node itself. The gate consults the {!Plan} at
    the fleet's current virtual time and injects faults on the frame
    path: attempts dropped before reaching the node, request bodies
    mangled (the version byte is forced invalid, so the strict decoder
    {e must} answer with a typed error rather than act on garbage),
    replies cut in half or padded past the client's max-frame bound,
    whole windows of refusal during a partition, and virtual latency
    during a slow window.

    Because clients reach the node only through the gate, fault
    injection is uniform over both fleet transports: in [mem://] mode
    the upstream is the node's own loopback handler; in [tcp://] mode
    the gate holds a real socket to the node and reconnects as needed.
    A raised fault surfaces to the client as a transport error — the
    same shape as a genuine crash — so the client's retry/failover
    machinery is exercised for real.

    Fault draws come from the gate's own seeded {!Mitos_util.Rng}
    stream, so a run's injected-fault sequence is a pure function of
    (seed, plan, request order). *)

exception Down of string
(** Raised by the gate handler to sever the attempt (the loopback
    transport converts it into a send error on the client side). *)

type counts = {
  mutable calls : int;  (** requests that entered the gate *)
  mutable drops : int;
  mutable corrupt_requests : int;
  mutable corrupt_replies : int;
  mutable truncated_replies : int;
  mutable oversized_replies : int;
  mutable refusals : int;  (** partition window or node down *)
}

val zero_counts : unit -> counts
(** All-zero — the accumulator seed for fleet-wide sums. *)

type t

val create :
  node:int ->
  name:string ->
  plan:Plan.t ->
  seed:int ->
  now:(unit -> float) ->
  upstream:(unit -> (string -> string) option) ->
  ?client_max_frame:int ->
  unit ->
  t
(** Registers the loopback handler under [name] (raising
    [Invalid_argument] if taken, like {!Transport.Loopback.register}).
    [now] reads the fleet's virtual clock; [upstream] resolves the
    node's current frame handler, [None] meaning the node is down.
    [client_max_frame] (default 65536) sizes oversize padding just past
    the tenant clients' receive bound. *)

val endpoint : t -> Mitos_net.Transport.endpoint
(** [Memory name] — what tenant clients connect to. *)

val counts : t -> counts

val take_delay : t -> float
(** Virtual seconds of slow-window delay accrued since the last take —
    the driver reads this after each operation and folds it into the
    virtual latency model. *)

val close : t -> unit
(** Unregister the handler. Idempotent. *)
