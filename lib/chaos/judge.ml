module Minijson = Mitos_util.Minijson
module Alerts = Mitos_obs.Alerts
module Attack = Mitos_workload.Attack

type slo = {
  min_recall : float;
  max_over_taint : float;
  max_p99_ns : float;
  expect_alert : bool option;
}

let default_slo =
  {
    min_recall = 1.0;
    max_over_taint = 1.0;
    max_p99_ns = 50e6;
    expect_alert = None;
  }

type scenario = {
  scenario_name : string;
  config : Fleetsim.config;
  plan : Plan.t;
  slo : slo;
}

type check = { check_name : string; ok : bool; detail : string }
type verdict = Pass | Violation

type report = {
  scenario : scenario;
  outcome : Fleetsim.outcome;
  checks : check list;
  verdict : verdict;
}

(* ---------- scoring ---------- *)

let recall_of (o : Fleetsim.outcome) =
  let detectable =
    List.length (List.filter (fun r -> r.Fleetsim.oracle_detected) o.attacks)
  in
  let detected =
    List.length
      (List.filter
         (fun r -> r.Fleetsim.oracle_detected && r.Fleetsim.detected)
         o.attacks)
  in
  let recall =
    if detectable = 0 then 1.0
    else float_of_int detected /. float_of_int detectable
  in
  (recall, detected, detectable)

let over_taint_of (o : Fleetsim.outcome) =
  List.fold_left
    (fun acc r ->
      if r.Fleetsim.oracle_tainted_bytes = 0 then acc
      else
        Float.max acc
          (float_of_int r.Fleetsim.tainted_bytes
          /. float_of_int r.Fleetsim.oracle_tainted_bytes))
    0.0 o.attacks

let unexpected_exhaustions (o : Fleetsim.outcome) =
  List.filter (fun e -> not e.Fleetsim.ex_expected) o.exhaustions

let expect_alert scenario =
  match scenario.slo.expect_alert with
  | Some b -> b
  | None ->
      Plan.expects_outage_alert scenario.plan
        ~duration:scenario.config.Fleetsim.gen.Tenantgen.duration

(* A node allowed to be unreadable at the end: the plan left it dead. *)
let dead_at_end scenario node =
  Plan.killed scenario.plan ~node
    ~at:scenario.config.Fleetsim.gen.Tenantgen.duration

let checks_of scenario (o : Fleetsim.outcome) =
  let slo = scenario.slo in
  let recall, detected, detectable = recall_of o in
  let over_taint = over_taint_of o in
  let p99 = Fleetsim.quantile_ns o.latencies_ns 0.99 in
  let unexpected = List.length (unexpected_exhaustions o) in
  let alert_expected = expect_alert scenario in
  let sync_bad =
    List.filter
      (fun s ->
        match s.Fleetsim.final with
        | None -> not (dead_at_end scenario s.Fleetsim.sync_node)
        | Some f -> Float.abs (f -. s.Fleetsim.intended) > 1e-6)
      o.syncs
  in
  [
    {
      check_name = "recall";
      ok = recall >= slo.min_recall;
      detail =
        (if detectable = 0 then "no oracle-detectable attacks injected"
         else
           Printf.sprintf "%d/%d oracle-detectable attacks detected" detected
             detectable);
    };
    {
      check_name = "over_taint";
      ok = over_taint <= slo.max_over_taint;
      detail =
        Printf.sprintf "worst tainted/oracle ratio %.3f (bound %.3f)" over_taint
          slo.max_over_taint;
    };
    {
      check_name = "p99_latency";
      ok = p99 <= slo.max_p99_ns;
      detail =
        Printf.sprintf "virtual p99 %.0fns (bound %.0fns)" p99 slo.max_p99_ns;
    };
    {
      check_name = "retries_exhausted";
      ok = unexpected = 0;
      detail =
        Printf.sprintf "%d unexpected of %d total exhaustions" unexpected
          (List.length o.exhaustions);
    };
    {
      check_name = "alerts";
      ok =
        (if alert_expected then
           o.alerts_fired >= 1 && o.alerts_resolved >= 1 && o.alert_quiet_at_end
         else o.alerts_fired = 0 && o.alert_quiet_at_end);
      detail =
        Printf.sprintf "expected=%b fired=%d resolved=%d quiet_at_end=%b"
          alert_expected o.alerts_fired o.alerts_resolved o.alert_quiet_at_end;
    };
    {
      check_name = "resync";
      ok = sync_bad = [];
      detail =
        (match sync_bad with
        | [] ->
            Printf.sprintf "%d node globals match intent (%d resync publishes)"
              (List.length o.syncs) o.resync_publishes
        | s :: _ ->
            Printf.sprintf "node %d final %s vs intended %.6f"
              s.Fleetsim.sync_node
              (match s.Fleetsim.final with
              | None -> "unreadable"
              | Some f -> Printf.sprintf "%.6f" f)
              s.Fleetsim.intended);
    };
  ]

let run scenario =
  match Fleetsim.run scenario.config ~plan:scenario.plan with
  | Error _ as e -> e
  | Ok outcome ->
      let checks = checks_of scenario outcome in
      let verdict =
        if List.for_all (fun c -> c.ok) checks then Pass else Violation
      in
      Ok { scenario; outcome; checks; verdict }

let exit_code report = match report.verdict with Pass -> 0 | Violation -> 1

(* ---------- the deterministic JSON report ---------- *)

let num f = Minijson.Num f
let int i = Minijson.Num (float_of_int i)
let str s = Minijson.Str s
let bool b = Minijson.Bool b

let to_json report =
  let o = report.outcome in
  let s = report.scenario in
  let cfg = s.config in
  let gen = cfg.Fleetsim.gen in
  let recall, detected, detectable = recall_of o in
  let counts = o.injected in
  let attacks_rows =
    List.map
      (fun (r : Fleetsim.attack_row) ->
        Minijson.Obj
          [
            ("at_s", num r.attack_at);
            ("tenant", int r.attack_tenant);
            ("node", int r.attack_node);
            ("variant", str (Attack.variant_name r.variant));
            ("detected", bool r.detected);
            ("tainted_bytes", int r.tainted_bytes);
            ("oracle_detected", bool r.oracle_detected);
            ("oracle_tainted_bytes", int r.oracle_tainted_bytes);
          ])
      o.attacks
  in
  let exhaustion_rows =
    List.map
      (fun (e : Fleetsim.exhaustion) ->
        Minijson.Obj
          [
            ("at_s", num e.ex_at);
            ("tenant", int e.ex_tenant);
            ("node", int e.ex_node);
            ("expected", bool e.ex_expected);
            ( "class",
              str
                (match e.ex_class with
                | `Refused -> "refused"
                | `Timeout -> "timeout"
                | `Unknown -> "unknown") );
          ])
      o.exhaustions
  in
  let incident_rows =
    List.map
      (fun (i : Alerts.incident) ->
        Minijson.Obj
          [
            ("seq", int i.Alerts.seq);
            ("at_s", num i.Alerts.at);
            ("alert", str i.Alerts.alert);
            ( "transition",
              str (Alerts.transition_to_string i.Alerts.transition) );
            ("severity", str (Alerts.severity_to_string i.Alerts.severity));
          ])
      o.incidents
  in
  let sync_rows =
    List.map
      (fun (s' : Fleetsim.node_sync) ->
        Minijson.Obj
          [
            ("node", int s'.Fleetsim.sync_node);
            ("intended", num s'.Fleetsim.intended);
            ( "final",
              match s'.Fleetsim.final with
              | None -> Minijson.Null
              | Some f -> num f );
            ( "ok",
              bool
                (match s'.Fleetsim.final with
                | None -> dead_at_end s s'.Fleetsim.sync_node
                | Some f -> Float.abs (f -. s'.Fleetsim.intended) <= 1e-6) );
          ])
      o.syncs
  in
  let check_rows =
    List.map
      (fun c ->
        Minijson.Obj
          [
            ("name", str c.check_name);
            ("ok", bool c.ok);
            ("detail", str c.detail);
          ])
      report.checks
  in
  let doc =
    Minijson.Obj
      [
        ("schema", str "mitos-chaos-report/1");
        ("scenario", str s.scenario_name);
        ("seed", int gen.Tenantgen.seed);
        ( "transport",
          str (match cfg.Fleetsim.transport with Mem -> "mem" | Tcp -> "tcp") );
        ("nodes", int cfg.Fleetsim.nodes);
        ("estimator_slots", int cfg.Fleetsim.estimator_slots);
        ("tenants", int gen.Tenantgen.tenants);
        ("duration_s", num gen.Tenantgen.duration);
        ( "plan",
          Minijson.List
            (List.map (fun e -> str (Plan.event_to_string e)) s.plan) );
        ( "traffic",
          Minijson.Obj
            [
              ("events", int o.events_total);
              ("decide_events", int o.decide_events);
              ("decisions", int o.decisions);
              ("publishes", int o.publishes);
              ("deferred_publishes", int o.deferred_publishes);
              ("resync_publishes", int o.resync_publishes);
              ("failovers", int o.failovers);
              ("remote_rejects", int o.remote_rejects);
              ("wire_rejects", int o.wire_rejects);
              ("bad_replies", int o.bad_replies);
              ("ping_rejects", int o.ping_rejects);
              ("client_retries", int o.client_retries_total);
              ("client_retries_exhausted", int o.client_exhausted_total);
            ] );
        ( "injected",
          Minijson.Obj
            [
              ("gate_calls", int counts.Gate.calls);
              ("drops", int counts.Gate.drops);
              ("corrupt_requests", int counts.Gate.corrupt_requests);
              ("corrupt_replies", int counts.Gate.corrupt_replies);
              ("truncated_replies", int counts.Gate.truncated_replies);
              ("oversized_replies", int counts.Gate.oversized_replies);
              ("refusals", int counts.Gate.refusals);
            ] );
        ( "latency_virtual_ns",
          Minijson.Obj
            [
              ("p50", num (Fleetsim.quantile_ns o.latencies_ns 0.5));
              ("p95", num (Fleetsim.quantile_ns o.latencies_ns 0.95));
              ("p99", num (Fleetsim.quantile_ns o.latencies_ns 0.99));
              ("max", num (Fleetsim.quantile_ns o.latencies_ns 1.0));
              ("samples", int (Array.length o.latencies_ns));
            ] );
        ( "attacks",
          Minijson.Obj
            [
              ("injected", int (List.length o.attacks));
              ("oracle_detectable", int detectable);
              ("detected", int detected);
              ("recall", num recall);
              ("max_over_taint_ratio", num (over_taint_of o));
              ("rows", Minijson.List attacks_rows);
            ] );
        ( "retries",
          Minijson.Obj
            [
              ("unexpected", int (List.length (unexpected_exhaustions o)));
              ("exhaustions", Minijson.List exhaustion_rows);
            ] );
        ( "alerts",
          Minijson.Obj
            [
              ("expected", bool (expect_alert s));
              ("fired", int o.alerts_fired);
              ("resolved", int o.alerts_resolved);
              ("quiet_at_end", bool o.alert_quiet_at_end);
              ("ticks", int o.ticks);
              ("down_ticks", int o.down_ticks);
              ("incidents", Minijson.List incident_rows);
            ] );
        ( "resync",
          Minijson.Obj
            [
              ("kills", int o.kills);
              ("restarts", int o.restarts);
              ("per_node", Minijson.List sync_rows);
            ] );
        ("checks", Minijson.List check_rows);
        ( "verdict",
          str (match report.verdict with Pass -> "pass" | Violation -> "fail")
        );
      ]
  in
  Minijson.render doc ^ "\n"

(* ---------- human rendering ---------- *)

let render report =
  let o = report.outcome in
  let s = report.scenario in
  let gen = s.config.Fleetsim.gen in
  let recall, detected, detectable = recall_of o in
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "chaos scenario %S: %d nodes x %d slots, %d tenants, %gs virtual (%s)\n"
    s.scenario_name s.config.Fleetsim.nodes s.config.Fleetsim.estimator_slots
    gen.Tenantgen.tenants gen.Tenantgen.duration
    (match s.config.Fleetsim.transport with Mem -> "mem" | Tcp -> "tcp");
  if s.plan = [] then addf "plan:              (no faults)\n"
  else
    List.iter (fun e -> addf "plan:              %s\n" (Plan.event_to_string e)) s.plan;
  addf "traffic:           %d events, %d decisions, %d publishes (%d deferred, %d resync)\n"
    o.events_total o.decisions o.publishes o.deferred_publishes
    o.resync_publishes;
  addf "injected:          %d drops, %d corrupt, %d truncated, %d oversized, %d refusals\n"
    o.injected.Gate.drops
    (o.injected.Gate.corrupt_requests + o.injected.Gate.corrupt_replies)
    o.injected.Gate.truncated_replies o.injected.Gate.oversized_replies
    o.injected.Gate.refusals;
  addf "typed rejects:     %d remote, %d wire, %d bad-reply, %d ping\n"
    o.remote_rejects o.wire_rejects o.bad_replies o.ping_rejects;
  addf "failovers:         %d (%d client retries, %d exhausted)\n" o.failovers
    o.client_retries_total o.client_exhausted_total;
  addf "latency (virtual): p50=%.0fns p99=%.0fns over %d samples\n"
    (Fleetsim.quantile_ns o.latencies_ns 0.5)
    (Fleetsim.quantile_ns o.latencies_ns 0.99)
    (Array.length o.latencies_ns);
  addf "detection recall:  %.3f (%d/%d oracle-detectable attacks)\n" recall
    detected detectable;
  addf "unexpected retries exhausted: %d\n"
    (List.length (unexpected_exhaustions o));
  addf "alerts:            fired=%d resolved=%d quiet_at_end=%b\n"
    o.alerts_fired o.alerts_resolved o.alert_quiet_at_end;
  addf "lifecycle:         %d kills, %d restarts, %d down ticks of %d\n"
    o.kills o.restarts o.down_ticks o.ticks;
  List.iter
    (fun c ->
      addf "slo %-18s %s  %s\n" (c.check_name ^ ":")
        (if c.ok then "ok " else "VIOLATION")
        c.detail)
    report.checks;
  addf "wall:              %.2fs (%.0f events/s)\n" o.wall_seconds
    (if o.wall_seconds > 0.0 then float_of_int o.events_total /. o.wall_seconds
     else 0.0);
  addf "verdict: %s\n"
    (match report.verdict with Pass -> "PASS" | Violation -> "FAIL");
  Buffer.contents buf

(* ---------- the bench row ---------- *)

let bench_row report =
  let o = report.outcome in
  let s = report.scenario in
  let recall, _, _ = recall_of o in
  Minijson.Obj
    [
      ("nodes", int s.config.Fleetsim.nodes);
      ("tenants", int s.config.Fleetsim.gen.Tenantgen.tenants);
      ("events", int o.events_total);
      ( "requests_per_sec",
        num
          (if o.wall_seconds > 0.0 then
             float_of_int o.events_total /. o.wall_seconds
           else 0.0) );
      ("p99_virtual_ns", num (Fleetsim.quantile_ns o.latencies_ns 0.99));
      ("recall", num recall);
    ]

let merge_into_bench_json ~path report =
  let doc =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Minijson.parse_result text with
      | Ok (Minijson.Obj fields) -> fields
      | Ok _ -> failwith (path ^ ": expected a JSON object")
      | Error msg -> failwith (path ^ ": " ^ msg)
    end
    else [ ("schema", Minijson.Str "mitos-bench-decisions/1") ]
  in
  let row = bench_row report in
  let doc =
    if List.mem_assoc "fleet" doc then
      List.map (fun (k, v) -> if k = "fleet" then (k, row) else (k, v)) doc
    else doc @ [ ("fleet", row) ]
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Minijson.render (Minijson.Obj doc));
      output_string oc "\n")

(* ---------- presets ---------- *)

let plan_exn text =
  match Plan.parse text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Judge preset plan: " ^ msg)

let base = Fleetsim.default_config

let scenario ?(slo = default_slo) ~name ~config ~plan () =
  { scenario_name = name; config; plan = plan_exn plan; slo }

let steady =
  scenario ~name:"steady"
    ~config:
      {
        base with
        Fleetsim.gen =
          {
            Tenantgen.default_config with
            Tenantgen.tenants = 400;
            duration = 12.0;
            rate_rps = 300.0;
            attack_rate = 0.004;
          };
      }
    ~plan:"" ()

let kill_restart =
  scenario ~name:"kill-restart"
    ~config:
      {
        base with
        Fleetsim.gen =
          {
            Tenantgen.default_config with
            Tenantgen.tenants = 600;
            duration = 20.0;
            rate_rps = 300.0;
            attack_rate = 0.004;
          };
      }
    ~plan:"kill@t=6s node=1\nrestart@t=12s node=1\n" ()

let partition =
  scenario ~name:"partition"
    ~config:
      {
        base with
        Fleetsim.gen =
          {
            Tenantgen.default_config with
            Tenantgen.tenants = 600;
            duration = 20.0;
            rate_rps = 300.0;
            attack_rate = 0.004;
          };
      }
    ~plan:"partition@t=6s until=12s node=2\n" ()

let frame_fuzz =
  scenario ~name:"frame-fuzz"
    ~config:
      {
        base with
        Fleetsim.gen =
          {
            Tenantgen.default_config with
            Tenantgen.tenants = 400;
            duration = 15.0;
            rate_rps = 300.0;
            attack_rate = 0.004;
          };
      }
    ~plan:
      "corrupt@rate=0.02\ndrop@rate=0.01\ntruncate@rate=0.01\noversize@rate=0.005\n"
    ()

let ci =
  scenario ~name:"ci"
    ~config:
      {
        base with
        Fleetsim.gen =
          {
            Tenantgen.default_config with
            Tenantgen.tenants = 200;
            duration = 25.0;
            rate_rps = 250.0;
            attack_rate = 0.004;
          };
      }
    ~plan:"kill@t=6s node=1\nrestart@t=12s node=1\ncorrupt@rate=0.01\n" ()

let bench =
  scenario ~name:"bench"
    ~config:
      {
        base with
        Fleetsim.gen =
          {
            Tenantgen.default_config with
            Tenantgen.tenants = 800;
            duration = 10.0;
            rate_rps = 1500.0;
            attack_rate = 0.0;
          };
      }
    ~plan:
      "kill@t=3s node=1\nrestart@t=5s node=1\ncorrupt@rate=0.005\nslow@t=6s until=8s node=0 delay=1ms\n"
    ()

let all_presets =
  [
    (steady, "no faults: traffic, attacks and quiet alerts");
    (kill_restart, "kill node 1 at 6s, restart and re-sync at 12s");
    (partition, "partition node 2 for 6s; its tenants defer, others serve");
    (frame_fuzz, "corrupt/drop/truncate/oversize frames fleet-wide");
    (ci, "the CI smoke plan: kill+restart under 1% frame corruption");
    (bench, "throughput plan for the fleet bench row (no attacks)");
  ]

let presets =
  List.map (fun (s, d) -> (s.scenario_name, d)) all_presets

let preset name =
  List.find_map
    (fun (s, _) -> if s.scenario_name = name then Some s else None)
    all_presets
