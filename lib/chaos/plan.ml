type target = All_nodes | Node of int

type event =
  | Kill of { at : float; node : int }
  | Restart of { at : float; node : int }
  | Slow of { from_ : float; until : float; target : target; delay : float }
  | Partition of { from_ : float; until : float; node : int }
  | Corrupt of { rate : float; target : target; from_ : float; until : float }
  | Drop of { rate : float; target : target; from_ : float; until : float }
  | Truncate of { rate : float; target : target; from_ : float; until : float }
  | Oversize of { rate : float; target : target; from_ : float; until : float }

type t = event list

let empty = []

(* ---------- rendering ---------- *)

(* Durations render as bare seconds with %g — "0.05s" rather than
   "50ms" — so the canonical form is unique and the round-trip test is
   a string equality. *)
let duration_to_string d =
  if d = infinity then "inf" else Printf.sprintf "%gs" d

let target_to_string = function
  | All_nodes -> "all"
  | Node n -> string_of_int n

let event_to_string = function
  | Kill { at; node } ->
      Printf.sprintf "kill@t=%s node=%d" (duration_to_string at) node
  | Restart { at; node } ->
      Printf.sprintf "restart@t=%s node=%d" (duration_to_string at) node
  | Slow { from_; until; target; delay } ->
      Printf.sprintf "slow@t=%s until=%s node=%s delay=%s"
        (duration_to_string from_) (duration_to_string until)
        (target_to_string target) (duration_to_string delay)
  | Partition { from_; until; node } ->
      Printf.sprintf "partition@t=%s until=%s node=%d" (duration_to_string from_)
        (duration_to_string until) node
  | Corrupt { rate; target; from_; until } ->
      Printf.sprintf "corrupt@rate=%g node=%s t=%s until=%s" rate
        (target_to_string target) (duration_to_string from_)
        (duration_to_string until)
  | Drop { rate; target; from_; until } ->
      Printf.sprintf "drop@rate=%g node=%s t=%s until=%s" rate
        (target_to_string target) (duration_to_string from_)
        (duration_to_string until)
  | Truncate { rate; target; from_; until } ->
      Printf.sprintf "truncate@rate=%g node=%s t=%s until=%s" rate
        (target_to_string target) (duration_to_string from_)
        (duration_to_string until)
  | Oversize { rate; target; from_; until } ->
      Printf.sprintf "oversize@rate=%g node=%s t=%s until=%s" rate
        (target_to_string target) (duration_to_string from_)
        (duration_to_string until)

let to_string plan = String.concat "" (List.map (fun e -> event_to_string e ^ "\n") plan)

(* ---------- parsing ---------- *)

let parse_duration s =
  let num_of str =
    match float_of_string_opt (String.trim str) with
    | Some f when f >= 0.0 -> Ok f
    | _ -> Error (Printf.sprintf "bad duration %S" s)
  in
  let n = String.length s in
  if s = "inf" then Ok infinity
  else if n > 2 && String.sub s (n - 2) 2 = "ms" then
    Result.map (fun f -> f *. 1e-3) (num_of (String.sub s 0 (n - 2)))
  else if n > 2 && String.sub s (n - 2) 2 = "us" then
    Result.map (fun f -> f *. 1e-6) (num_of (String.sub s 0 (n - 2)))
  else if n > 1 && s.[n - 1] = 's' then num_of (String.sub s 0 (n - 1))
  else num_of s

let parse_target s =
  if s = "all" then Ok All_nodes
  else
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Node n)
    | _ -> Error (Printf.sprintf "bad node %S (index or \"all\")" s)

let ( let* ) = Result.bind

(* A tiny keyed-field reader over the [k=v] pairs of one event. *)
module Fields = struct
  type t = (string * string) list

  let of_words words : (t, string) result =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | w :: rest -> (
          match String.index_opt w '=' with
          | None -> Error (Printf.sprintf "expected key=value, got %S" w)
          | Some i ->
              let k = String.sub w 0 i in
              let v = String.sub w (i + 1) (String.length w - i - 1) in
              if k = "" || v = "" then
                Error (Printf.sprintf "expected key=value, got %S" w)
              else if List.mem_assoc k acc then
                Error (Printf.sprintf "duplicate key %S" k)
              else go ((k, v) :: acc) rest)
    in
    go [] words

  let find fields keys = List.find_map (fun k -> List.assoc_opt k fields) keys

  let known fields names =
    match
      List.find_opt (fun (k, _) -> not (List.mem k names)) fields
    with
    | Some (k, _) -> Error (Printf.sprintf "unknown key %S" k)
    | None -> Ok ()

  let duration fields keys ~default =
    match find fields keys with
    | None -> (
        match default with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "missing %s=" (List.hd keys)))
    | Some v -> parse_duration v

  let node fields ~default =
    match find fields [ "node" ] with
    | None -> (
        match default with
        | Some t -> Ok t
        | None -> Error "missing node=")
    | Some v -> parse_target v

  let rate fields =
    match find fields [ "rate" ] with
    | None -> Error "missing rate="
    | Some v -> (
        match float_of_string_opt v with
        | Some r when r >= 0.0 && r <= 1.0 -> Ok r
        | _ -> Error (Printf.sprintf "bad rate %S (want 0..1)" v))
end

let int_node fields =
  let* t = Fields.node fields ~default:None in
  match t with
  | Node n -> Ok n
  | All_nodes -> Error "node=all not allowed here"

let parse_event line =
  let line = String.trim line in
  match String.index_opt line '@' with
  | None -> Error (Printf.sprintf "expected NAME@key=value..., got %S" line)
  | Some i ->
      let name = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      let words =
        String.split_on_char ' ' rest |> List.filter (fun w -> w <> "")
      in
      let* fields = Fields.of_words words in
      let window () =
        let* from_ = Fields.duration fields [ "t"; "from" ] ~default:(Some 0.0) in
        let* until = Fields.duration fields [ "until" ] ~default:(Some infinity) in
        if until < from_ then Error "until= before t="
        else Ok (from_, until)
      in
      let rate_fault mk =
        let* () = Fields.known fields [ "rate"; "node"; "t"; "from"; "until" ] in
        let* rate = Fields.rate fields in
        let* target = Fields.node fields ~default:(Some All_nodes) in
        let* from_, until = window () in
        Ok (mk ~rate ~target ~from_ ~until)
      in
      let res =
        match name with
        | "kill" ->
            let* () = Fields.known fields [ "t"; "from"; "node" ] in
            let* at = Fields.duration fields [ "t"; "from" ] ~default:None in
            let* node = int_node fields in
            Ok (Kill { at; node })
        | "restart" ->
            let* () = Fields.known fields [ "t"; "from"; "node" ] in
            let* at = Fields.duration fields [ "t"; "from" ] ~default:None in
            let* node = int_node fields in
            Ok (Restart { at; node })
        | "slow" ->
            let* () =
              Fields.known fields [ "t"; "from"; "until"; "node"; "delay" ]
            in
            let* from_, until = window () in
            let* target = Fields.node fields ~default:(Some All_nodes) in
            let* delay = Fields.duration fields [ "delay" ] ~default:None in
            if delay = infinity then Error "delay= must be finite"
            else Ok (Slow { from_; until; target; delay })
        | "partition" ->
            let* () = Fields.known fields [ "t"; "from"; "until"; "node" ] in
            let* from_, until = window () in
            let* node = int_node fields in
            Ok (Partition { from_; until; node })
        | "corrupt" ->
            rate_fault (fun ~rate ~target ~from_ ~until ->
                Corrupt { rate; target; from_; until })
        | "drop" ->
            rate_fault (fun ~rate ~target ~from_ ~until ->
                Drop { rate; target; from_; until })
        | "truncate" ->
            rate_fault (fun ~rate ~target ~from_ ~until ->
                Truncate { rate; target; from_; until })
        | "oversize" ->
            rate_fault (fun ~rate ~target ~from_ ~until ->
                Oversize { rate; target; from_; until })
        | _ -> Error (Printf.sprintf "unknown fault %S" name)
      in
      Result.map_error (fun e -> Printf.sprintf "%s: %s" name e) res

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let pieces =
          String.split_on_char ';' line
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        let rec events acc = function
          | [] -> Ok acc
          | piece :: more -> (
              match parse_event piece with
              | Ok e -> events (e :: acc) more
              | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
        in
        let* acc = events acc pieces in
        go (lineno + 1) acc rest
  in
  go 1 [] lines

(* ---------- validation ---------- *)

let node_of_target = function All_nodes -> None | Node n -> Some n

let validate ~nodes ~duration plan =
  let check_node n =
    if n < 0 || n >= nodes then
      Error (Printf.sprintf "node %d out of range (fleet has %d)" n nodes)
    else Ok ()
  in
  let check_target t =
    match node_of_target t with Some n -> check_node n | None -> Ok ()
  in
  let check_at what at =
    if at > duration then
      Error (Printf.sprintf "%s at %gs is past the %gs scenario" what at duration)
    else Ok ()
  in
  let rec go alive = function
    | [] -> Ok ()
    | Kill { at; node } :: rest ->
        let* () = check_node node in
        let* () = check_at "kill" at in
        if not (List.mem node alive) then
          Error (Printf.sprintf "node %d killed twice without a restart" node)
        else go (List.filter (( <> ) node) alive) rest
    | Restart { at; node } :: rest ->
        let* () = check_node node in
        let* () = check_at "restart" at in
        if List.mem node alive then
          Error (Printf.sprintf "restart of node %d which is not killed" node)
        else go (node :: alive) rest
    | Slow { from_; target; _ } :: rest ->
        let* () = check_target target in
        let* () = check_at "slow" from_ in
        go alive rest
    | Partition { from_; node; _ } :: rest ->
        let* () = check_node node in
        let* () = check_at "partition" from_ in
        go alive rest
    | (Corrupt { target; from_; _ } | Drop { target; from_; _ }
      | Truncate { target; from_; _ } | Oversize { target; from_; _ })
      :: rest ->
        let* () = check_target target in
        let* () = check_at "fault window" from_ in
        go alive rest
  in
  (* kills must come before their restart in file order for the alive
     tracking above; sort by time first so out-of-order files are fine *)
  let time_of = function
    | Kill { at; _ } | Restart { at; _ } -> at
    | Slow { from_; _ } | Partition { from_; _ } | Corrupt { from_; _ }
    | Drop { from_; _ } | Truncate { from_; _ } | Oversize { from_; _ } ->
        from_
  in
  let sorted = List.stable_sort (fun a b -> compare (time_of a) (time_of b)) plan in
  go (List.init nodes Fun.id) sorted

(* ---------- queries ---------- *)

let target_hits target ~node =
  match target with All_nodes -> true | Node n -> n = node

let in_window ~from_ ~until ~at = at >= from_ && at < until

let slow_delay plan ~node ~at =
  List.fold_left
    (fun acc -> function
      | Slow { from_; until; target; delay }
        when target_hits target ~node && in_window ~from_ ~until ~at ->
          acc +. delay
      | _ -> acc)
    0.0 plan

let partitioned plan ~node ~at =
  List.exists
    (function
      | Partition { from_; until; node = n } ->
          n = node && in_window ~from_ ~until ~at
      | _ -> false)
    plan

let killed plan ~node ~at =
  (* inside some kill..restart window of this node *)
  let kills =
    List.filter_map
      (function
        | Kill { at = t; node = n } when n = node -> Some (`K t)
        | Restart { at = t; node = n } when n = node -> Some (`R t)
        | _ -> None)
      plan
    |> List.stable_sort
         (fun a b ->
           let t = function `K t | `R t -> t in
           compare (t a) (t b))
  in
  let rec go down = function
    | [] -> down
    | `K t :: rest -> if at < t then down else go true rest
    | `R t :: rest -> if at < t then down else go false rest
  in
  go false kills

let down plan ~node ~at = killed plan ~node ~at || partitioned plan ~node ~at

let rate plan ~kind ~node ~at =
  let pick = function
    | Corrupt { rate; target; from_; until } when kind = `Corrupt ->
        Some (rate, target, from_, until)
    | Drop { rate; target; from_; until } when kind = `Drop ->
        Some (rate, target, from_, until)
    | Truncate { rate; target; from_; until } when kind = `Truncate ->
        Some (rate, target, from_, until)
    | Oversize { rate; target; from_; until } when kind = `Oversize ->
        Some (rate, target, from_, until)
    | _ -> None
  in
  let total =
    List.fold_left
      (fun acc e ->
        match pick e with
        | Some (rate, target, from_, until)
          when target_hits target ~node && in_window ~from_ ~until ~at ->
            acc +. rate
        | _ -> acc)
      0.0 plan
  in
  Float.min 1.0 total

let expects_outage_alert plan ~duration =
  (* The tick-driven burn-rate rule needs the outage to start a couple
     of ticks in, and heal with enough tail for for_/keep_firing to
     walk the incident back to resolved. 4s of margin on each side is
     comfortably beyond the rule's for=2/keep=2 settings. *)
  let margin = 4.0 in
  List.exists
    (function
      | Kill { at; node } ->
          at +. margin <= duration
          &&
          let healed =
            List.exists
              (function
                | Restart { at = r; node = n } ->
                    n = node && r > at && r +. margin <= duration
                | _ -> false)
              plan
          in
          healed
      | Partition { from_; until; _ } ->
          from_ +. margin <= duration && until +. margin <= duration
      | _ -> false)
    plan
