(** Seeded multi-tenant traffic generation.

    Thousands of tenants, each with independent split {!Mitos_util.Rng}
    substreams, emit an open-loop arrival schedule over virtual time:
    Pareto (heavy-tail) inter-arrivals whose mean tracks a sinusoidal
    diurnal ramp. Most events are batched decide requests; every
    [publish_every]-th is a pollution publish toward the tenant's home
    estimator slot (the first event always publishes, so every slot is
    seeded early); a configurable per-tenant rate replaces a decide
    with a full {!Mitos_workload.Attack} run — all six Metasploit
    variants, round-robin, so a run long enough to inject six attacks
    covers them all.

    The schedule is a pure function of the config: same seed, same
    byte-identical event array. *)

type kind =
  | Decide
  | Publish of float  (** pollution value for the tenant's home slot *)
  | Attack of Mitos_workload.Attack.variant * int
      (** variant and its build seed *)

type event = {
  at : float;  (** virtual seconds from scenario start *)
  tenant : int;
  seq : int;  (** per-tenant event index *)
  kind : kind;
}

type config = {
  tenants : int;
  duration : float;  (** virtual seconds *)
  rate_rps : float;  (** mean fleet-wide events per second *)
  pareto_alpha : float;  (** inter-arrival tail shape, > 1 *)
  diurnal_amp : float;  (** rate swings between [(1 ± amp) * rate] *)
  diurnal_period_s : float;
  attack_rate : float;  (** per-event probability of an attack run *)
  publish_every : int;  (** 0 = only the seeding publish *)
  publish_scale : float;  (** publish values uniform in [0, scale) *)
  seed : int;
}

val default_config : config
(** 1000 tenants, 20 virtual seconds, 400 events/s fleet-wide, alpha
    1.5, 30% diurnal swing over a 10s period, attack rate 0.002, a
    publish every 40 events per tenant, publish scale 10, seed 7. *)

val validate : config -> (unit, string) result

val schedule : config -> event array
(** Sorted by [(at, tenant, seq)]. Raises [Invalid_argument] when
    {!validate} would refuse the config. *)

val mix_rngs : config -> Mitos_util.Rng.t array
(** Per-tenant request-mix generators (decide payload contents), split
    from the same master seed as the schedule but disjoint from the
    arrival and kind streams — so consuming them at service time
    cannot perturb the schedule. *)
