(** The chaos fleet driver.

    Runs a {!Tenantgen} schedule against a {e real} fleet of
    {!Mitos_net.Server} nodes — each fronted by a fault-injecting
    {!Gate} — under a {!Plan}, over a virtual clock. The driver owns
    node lifecycle (kill stops the node's server, {e losing} its
    estimator state; restart creates a fresh one and re-syncs it
    through the ordinary publish path), client failover (decides fail
    over to the next node on transport errors; publishes stay home —
    deferred while the home node is down and replayed on heal), attack
    execution (a full {!Mitos_workload.Attack} engine run whose
    pollution estimate is read from the fleet over the wire, scored
    against a propagate-all oracle), tenant-labelled audit notes, and
    burn-rate alerting fed from per-node pings at every virtual tick.

    Everything in the {!outcome} except [wall_seconds] is a pure
    function of (config, plan): latencies are modelled in virtual
    nanoseconds, fault draws come from seeded streams, and no wall
    clock or unordered iteration touches a reported value — the basis
    of the same-seed byte-identical report contract (DESIGN §16). *)

type transport = Mem | Tcp

type config = {
  nodes : int;
  estimator_slots : int;  (** per node *)
  transport : transport;
  workers : int;  (** worker domains per node, [Tcp] only *)
  gen : Tenantgen.config;
  batch : int;  (** decide requests per frame *)
  candidates : int;
  space : int;
  client_retries : int;
  tick_every : float;  (** virtual seconds between alert ticks *)
}

val default_config : config
(** 3 nodes of 8 slots over [Mem], 2 workers, {!Tenantgen.default_config}
    traffic, batch 8, up to 6 candidates / space 4, 1 client retry,
    1s ticks. *)

type attack_row = {
  attack_at : float;
  attack_tenant : int;
  attack_node : int;  (** node whose global fed the policy *)
  variant : Mitos_workload.Attack.variant;
  detected : bool;
  tainted_bytes : int;
  oracle_detected : bool;
  oracle_tainted_bytes : int;
}

type exhaustion = {
  ex_at : float;
  ex_tenant : int;
  ex_node : int;
  ex_expected : bool;
      (** the plan had the path down (kill or partition window) *)
  ex_class : [ `Refused | `Timeout | `Unknown ];
}

type node_sync = {
  sync_node : int;
  intended : float;  (** sum of the driver's last published values *)
  final : float option;  (** fleet's answer at the end; [None] if dead *)
}

type outcome = {
  events_total : int;
  decide_events : int;
  decisions : int;  (** individual decide requests answered *)
  publishes : int;
  deferred_publishes : int;  (** held back while the home node was down *)
  resync_publishes : int;
  remote_rejects : int;
  wire_rejects : int;
  bad_replies : int;
  failovers : int;
  ping_rejects : int;
  kills : int;
  restarts : int;
  attacks : attack_row list;  (** in schedule order *)
  exhaustions : exhaustion list;
  injected : Gate.counts;  (** summed over the gates *)
  latencies_ns : float array;  (** virtual, sorted ascending *)
  client_retries_total : int;  (** [mitos_net_retries_total] *)
  client_exhausted_total : int;
  syncs : node_sync list;  (** per node, in node order *)
  incidents : Mitos_obs.Alerts.incident list;
  alerts_fired : int;
  alerts_resolved : int;
  alert_quiet_at_end : bool;
  ticks : int;
  down_ticks : int;  (** tick observations with at least one node down *)
  audit : Mitos_obs.Audit.t;  (** tenant-labelled notes *)
  wall_seconds : float;  (** the one nondeterministic field *)
}

val outage_alert_name : string
(** The burn-rate rule the driver feeds ("fleet_outage" on signal
    [chaos_nodes_down]). *)

val quantile_ns : float array -> float -> float
(** Exact nearest-rank quantile of a sorted latency array (0 when
    empty) — shared by the judge and the bench row. *)

val run : config -> plan:Plan.t -> (outcome, string) result
(** [Error] on an invalid config or plan, or when the fleet cannot be
    brought up at all. Faults mid-run are the point and never error.
    All servers, gates, clients and loopback names are torn down on
    every path. *)
