module Rng = Mitos_util.Rng
module Attack = Mitos_workload.Attack

type kind = Decide | Publish of float | Attack of Attack.variant * int

type event = { at : float; tenant : int; seq : int; kind : kind }

type config = {
  tenants : int;
  duration : float;
  rate_rps : float;
  pareto_alpha : float;
  diurnal_amp : float;
  diurnal_period_s : float;
  attack_rate : float;
  publish_every : int;
  publish_scale : float;
  seed : int;
}

let default_config =
  {
    tenants = 1000;
    duration = 20.0;
    rate_rps = 400.0;
    pareto_alpha = 1.5;
    diurnal_amp = 0.3;
    diurnal_period_s = 10.0;
    attack_rate = 0.002;
    publish_every = 40;
    publish_scale = 10.0;
    seed = 7;
  }

let validate c =
  if c.tenants <= 0 then Error "tenants must be positive"
  else if c.duration <= 0.0 then Error "duration must be positive"
  else if c.rate_rps <= 0.0 then Error "rate must be positive"
  else if c.pareto_alpha <= 1.0 then
    Error "pareto alpha must exceed 1 (finite mean)"
  else if c.diurnal_amp < 0.0 || c.diurnal_amp >= 1.0 then
    Error "diurnal amp must be in [0, 1)"
  else if c.diurnal_period_s <= 0.0 then Error "diurnal period must be positive"
  else if c.attack_rate < 0.0 || c.attack_rate > 1.0 then
    Error "attack rate must be in [0, 1]"
  else if c.publish_every < 0 then Error "publish_every must be non-negative"
  else if c.publish_scale <= 0.0 then Error "publish scale must be positive"
  else Ok ()

(* Each tenant consumes three independent substreams split from the
   master in a fixed order: arrivals, event kinds, request mix. The
   mix stream is returned separately ({!mix_rngs}) and drawn from at
   service time, so however many draws a decide batch takes, the
   schedule itself is untouched. *)
let per_tenant_rngs c =
  let master = Rng.create c.seed in
  Array.init c.tenants (fun _ ->
      let arrival = Rng.split master in
      let kinds = Rng.split master in
      let mix = Rng.split master in
      (arrival, kinds, mix))

let mix_rngs c =
  match validate c with
  | Error msg -> invalid_arg ("Tenantgen.mix_rngs: " ^ msg)
  | Ok () -> Array.map (fun (_, _, mix) -> mix) (per_tenant_rngs c)

(* Guardrail on heavy-tail draws: a single tenant cannot emit more
   than 32x its expected share of events, which bounds memory without
   visibly clipping the distribution. *)
let max_events_per_tenant c =
  let expected = c.duration *. c.rate_rps /. float_of_int c.tenants in
  max 64 (int_of_float (32.0 *. expected))

let schedule c =
  (match validate c with
  | Error msg -> invalid_arg ("Tenantgen.schedule: " ^ msg)
  | Ok () -> ());
  let rngs = per_tenant_rngs c in
  let per_tenant_rate = c.rate_rps /. float_of_int c.tenants in
  let cap = max_events_per_tenant c in
  let attack_counter = ref 0 in
  let variants = Array.of_list Attack.all_variants in
  let events = ref [] in
  for tenant = 0 to c.tenants - 1 do
    let arrival, kinds, _ = rngs.(tenant) in
    let t = ref 0.0 and seq = ref 0 in
    (* Desynchronize tenants: a uniform phase offset before the first
       event, so 1000 tenants do not all publish at t=0. *)
    t := Rng.float arrival (1.0 /. per_tenant_rate);
    while !t < c.duration && !seq < cap do
      let kind =
        if !seq = 0 || (c.publish_every > 0 && !seq mod c.publish_every = 0)
        then Publish (Rng.float kinds c.publish_scale)
        else if c.attack_rate > 0.0 && Rng.bernoulli kinds c.attack_rate then begin
          let i = !attack_counter in
          incr attack_counter;
          (* Fixed per-occurrence build seed: the oracle run for the
             same variant/seed pair is exactly comparable. *)
          Attack (variants.(i mod Array.length variants), 11 + (i mod Array.length variants))
        end
        else Decide
      in
      events := { at = !t; tenant; seq = !seq; kind } :: !events;
      incr seq;
      (* Diurnal ramp scales the instantaneous rate; Pareto shape keeps
         the bursts. xm is chosen so the mean inter-arrival matches. *)
      let shape =
        1.0
        +. c.diurnal_amp
           *. sin (2.0 *. Float.pi *. !t /. c.diurnal_period_s)
      in
      let shape = Float.max 0.1 shape in
      let mean = 1.0 /. (per_tenant_rate *. shape) in
      let xm = mean *. (c.pareto_alpha -. 1.0) /. c.pareto_alpha in
      t := !t +. Rng.pareto arrival ~alpha:c.pareto_alpha ~xm
    done
  done;
  let arr = Array.of_list !events in
  Array.sort
    (fun a b -> compare (a.at, a.tenant, a.seq) (b.at, b.tenant, b.seq))
    arr;
  arr
