module Transport = Mitos_net.Transport
module Rng = Mitos_util.Rng

exception Down of string

type counts = {
  mutable calls : int;
  mutable drops : int;
  mutable corrupt_requests : int;
  mutable corrupt_replies : int;
  mutable truncated_replies : int;
  mutable oversized_replies : int;
  mutable refusals : int;
}

type t = {
  node : int;
  name : string;
  plan : Plan.t;
  rng : Rng.t;
  now : unit -> float;
  upstream : unit -> (string -> string) option;
  client_max_frame : int;
  counts : counts;
  mutable delay : float;
  mutable closed : bool;
}

let zero_counts () =
  {
    calls = 0;
    drops = 0;
    corrupt_requests = 0;
    corrupt_replies = 0;
    truncated_replies = 0;
    oversized_replies = 0;
    refusals = 0;
  }

(* Forcing the version byte invalid guarantees the node's strict
   decoder rejects the frame with a typed error; flipping only a later
   byte could land in a don't-care position and slip through. A second
   scrambled byte deeper in keeps the fuzzing honest. *)
let mangle rng body =
  if String.length body = 0 then "\xff"
  else begin
    let b = Bytes.of_string body in
    Bytes.set b 0 '\xff';
    if Bytes.length b > 1 then begin
      let i = 1 + Rng.int rng (Bytes.length b - 1) in
      Bytes.set b i (Rng.byte rng)
    end;
    Bytes.to_string b
  end

let handle t body =
  let at = t.now () in
  t.counts.calls <- t.counts.calls + 1;
  let d = Plan.slow_delay t.plan ~node:t.node ~at in
  if d > 0.0 then t.delay <- t.delay +. d;
  if Plan.partitioned t.plan ~node:t.node ~at then begin
    t.counts.refusals <- t.counts.refusals + 1;
    raise (Down "partitioned")
  end;
  let active kind = Plan.rate t.plan ~kind ~node:t.node ~at in
  let draw p = p > 0.0 && Rng.bernoulli t.rng p in
  if draw (active `Drop) then begin
    t.counts.drops <- t.counts.drops + 1;
    raise (Down "injected drop")
  end;
  let body =
    if draw (active `Corrupt) then begin
      t.counts.corrupt_requests <- t.counts.corrupt_requests + 1;
      mangle t.rng body
    end
    else body
  in
  match t.upstream () with
  | None ->
      t.counts.refusals <- t.counts.refusals + 1;
      raise (Down "node down")
  | Some call ->
      let reply = call body in
      (* Reply-side faults are drawn after the upstream call so the
         node really handled (or rejected) the request first. *)
      if draw (active `Truncate) && String.length reply > 1 then begin
        t.counts.truncated_replies <- t.counts.truncated_replies + 1;
        String.sub reply 0 (String.length reply / 2)
      end
      else if draw (active `Oversize) then begin
        t.counts.oversized_replies <- t.counts.oversized_replies + 1;
        let pad = t.client_max_frame + 1 - String.length reply in
        if pad > 0 then reply ^ String.make pad '\x00' else reply
      end
      else if draw (active `Corrupt) then begin
        t.counts.corrupt_replies <- t.counts.corrupt_replies + 1;
        mangle t.rng reply
      end
      else reply

let create ~node ~name ~plan ~seed ~now ~upstream ?(client_max_frame = 65536) ()
    =
  let t =
    {
      node;
      name;
      plan;
      rng = Rng.create (seed lxor ((node + 1) * 0x67617465));
      now;
      upstream;
      client_max_frame;
      counts = zero_counts ();
      delay = 0.0;
      closed = false;
    }
  in
  Transport.Loopback.register name (handle t);
  t

let endpoint t = Transport.Memory t.name
let counts t = t.counts

let take_delay t =
  let d = t.delay in
  t.delay <- 0.0;
  d

let close t =
  if not t.closed then begin
    t.closed <- true;
    Transport.Loopback.unregister t.name
  end
