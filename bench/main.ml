(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (printed as console tables), then runs
   bechamel microbenchmarks for the systems claims (O(1) decision
   cost, Alg. 2 batch cost, shadow-memory and engine throughput).

   Usage:
     dune exec bench/main.exe                    -- everything
     dune exec bench/main.exe -- quick           -- deterministic experiments
     dune exec bench/main.exe -- micro           -- microbenchmarks only
                                                    (writes BENCH_decisions.json)
     dune exec bench/main.exe -- obs             -- observability overhead only
     dune exec bench/main.exe -- report [PATH]   -- markdown report
     dune exec bench/main.exe -- MODE --jobs N   -- run experiments on an
                                                    N-domain pool (output is
                                                    byte-identical to --jobs 1)
     dune exec bench/main.exe -- MODE --shards N -- shard the shadow stores
                                                    N ways (for a fixed N,
                                                    output is byte-identical
                                                    across --jobs)
     dune exec bench/main.exe -- MODE --listen HOST:PORT
                                                 -- expose /metrics, /healthz,
                                                    /snapshot.json, /tracez and
                                                    /auditz (from a netbench
                                                    telemetry pilot) for the
                                                    duration of the run *)

open Bechamel
open Toolkit
module E = Mitos_experiments
module Pool = Mitos_parallel.Pool
open Mitos_tag

(* -- paper experiments ------------------------------------------------ *)

(* Every section here prints only deterministic quantities (no wall
   clocks), so `quick` output diffs clean across runs and across
   --jobs settings. Obs_overhead measures timing overheads and is
   inherently nondeterministic; it runs in `all`/`obs`/`report`. *)
let deterministic_sections ?pool () =
  let recorded = E.Fig7.record_netbench () in
  [
    E.Fig3.run ?pool (); E.Fig7.run ~recorded ?pool ();
    E.Fig8.run ~recorded ?pool (); E.Fig9.run ~recorded ?pool ();
    E.Table2.run ?pool (); E.Latency.run ?pool (); E.Exfil_study.run ();
    E.Hw_model.run (); E.Validation.run ?pool ();
  ]
  @ E.Ablations.run_all ?pool ()

let all_sections ?pool () =
  deterministic_sections ?pool () @ [ E.Obs_overhead.run () ]

let run_experiments ?pool () =
  List.iter E.Report.print (deterministic_sections ?pool ())

let write_markdown ?pool path =
  let sections = all_sections ?pool () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# MITOS reproduction - generated experiment report\n\n";
      List.iter
        (fun section -> output_string oc (E.Report.to_markdown section))
        sections);
  Printf.printf "wrote %s (%d sections)\n" path (List.length sections)

(* -- microbenchmarks --------------------------------------------------- *)

let net i = Tag.make Tag_type.Network i

let params =
  Mitos.Params.make ~total_tag_space:(1 lsl 30) ~mem_capacity:(1 lsl 20) ()

(* Scalability claim (paper SIV-B properties 2-3): the per-decision
   cost must not depend on the number of live tags in the system. *)
let bench_decision_scaling =
  let make_env live_tags =
    let stats = Tag_stats.create () in
    for i = 1 to live_tags do
      Tag_stats.incr stats (net i)
    done;
    Mitos.Decision.of_stats params stats
  in
  let subject = net 1 in
  let fast = Mitos.Decision.fast params in
  List.concat_map
    (fun live ->
      let env = make_env live in
      [
        Test.make
          ~name:(Printf.sprintf "alg1 decision (%d live tags)" live)
          (Staged.stage (fun () ->
               ignore (Mitos.Decision.alg1 params env subject)));
        Test.make
          ~name:(Printf.sprintf "alg1 fast decision (%d live tags)" live)
          (Staged.stage (fun () ->
               ignore (Mitos.Decision.alg1_fast fast env subject)));
      ])
    [ 10; 1_000; 100_000 ]

let bench_alg2 =
  let stats = Tag_stats.create () in
  List.iter
    (fun i ->
      for _ = 1 to i * 3 do
        Tag_stats.incr stats (net i)
      done)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let env = Mitos.Decision.of_stats params stats in
  let candidates = List.init 8 (fun i -> net (i + 1)) in
  let fast = Mitos.Decision.fast params in
  [
    Test.make ~name:"alg2 (8 candidates, space 4)"
      (Staged.stage (fun () ->
           ignore (Mitos.Decision.alg2 params env ~space:4 candidates)));
    Test.make ~name:"alg2 fast (8 candidates, space 4)"
      (Staged.stage (fun () ->
           ignore (Mitos.Decision.alg2_fast fast env ~space:4 candidates)));
  ]

let bench_shadow =
  let shadow =
    Shadow.create ~mem_capacity:(1 lsl 16) ~num_regs:16 ~m_prov:10 ()
  in
  let counter = ref 0 in
  let full_list =
    let p = Provenance.create 10 in
    for i = 1 to 10 do
      ignore (Provenance.add p (net i))
    done;
    p
  in
  let next = ref 10 in
  [
    Test.make ~name:"shadow taint+clear byte"
      (Staged.stage (fun () ->
           let addr = !counter land 0xFFFF in
           incr counter;
           ignore (Shadow.add_tag_addr shadow addr (net 1));
           Shadow.clear_addr shadow addr));
    Test.make ~name:"provenance add (full list, fifo)"
      (Staged.stage (fun () ->
           incr next;
           ignore (Provenance.add full_list (net !next))));
  ]

let bench_engine =
  (* replay throughput over a prerecorded trace slice *)
  let built = Mitos_workload.Netbench.build ~seed:1 ~chunks:2 () in
  let trace = Mitos_workload.Workload.record built in
  let records = Mitos_replay.Trace.records trace in
  let slice = Array.sub records 0 (min 1_000 (Array.length records)) in
  let bench_policy name policy =
    Test.make ~name:(Printf.sprintf "engine replay 1k records (%s)" name)
      (Staged.stage (fun () ->
           let engine = Mitos_workload.Workload.engine_of ~policy built in
           Mitos_dift.Engine.attach_shadow engine
             ~mem_size:(Mitos_replay.Trace.mem_size trace);
           Array.iter (Mitos_dift.Engine.process_record engine) slice))
  in
  let bench_backend name backend =
    Test.make
      ~name:(Printf.sprintf "engine replay 1k records (%s shadow)" name)
      (Staged.stage (fun () ->
           let config =
             { Mitos_dift.Engine.default_config with shadow_backend = backend }
           in
           let engine =
             Mitos_workload.Workload.engine_of ~config
               ~policy:Mitos_dift.Policies.propagate_all built
           in
           Mitos_dift.Engine.attach_shadow engine
             ~mem_size:(Mitos_replay.Trace.mem_size trace);
           Array.iter (Mitos_dift.Engine.process_record engine) slice))
  in
  let bench_instrumented name make_obs =
    Test.make ~name:(Printf.sprintf "engine replay 1k records (%s)" name)
      (Staged.stage (fun () ->
           let engine =
             Mitos_workload.Workload.engine_of
               ~policy:Mitos_dift.Policies.propagate_all built
           in
           Mitos_dift.Engine.instrument engine (make_obs ());
           Mitos_dift.Engine.attach_shadow engine
             ~mem_size:(Mitos_replay.Trace.mem_size trace);
           Array.iter (Mitos_dift.Engine.process_record engine) slice))
  in
  (* audit flight-recorder cost on the decision-heavy mitos replay:
     the disabled row pays only the probe check, the enabled row
     records every Alg. 1/2 call plus evictions into the ring *)
  let bench_audit name enabled =
    Test.make ~name:(Printf.sprintf "engine replay 1k records (%s)" name)
      (Staged.stage (fun () ->
           let engine =
             Mitos_workload.Workload.engine_of
               ~policy:
                 (Mitos_dift.Policies.mitos (E.Calib.sensitivity_params ()))
               built
           in
           if enabled then begin
             let audit = Mitos_obs.Audit.create ~capacity:(1 lsl 18) () in
             Mitos.Decision.set_audit (Some audit);
             Mitos_dift.Engine.instrument ~audit engine Mitos_obs.Obs.disabled
           end;
           Mitos_dift.Engine.attach_shadow engine
             ~mem_size:(Mitos_replay.Trace.mem_size trace);
           Array.iter (Mitos_dift.Engine.process_record engine) slice;
           if enabled then Mitos.Decision.set_audit None))
  in
  [
    bench_policy "faros" Mitos_dift.Policies.faros;
    bench_policy "propagate-all" Mitos_dift.Policies.propagate_all;
    bench_policy "mitos"
      (Mitos_dift.Policies.mitos (E.Calib.sensitivity_params ()));
    bench_backend "hashed" Shadow.Hashed;
    bench_backend "paged" Shadow.Paged;
    bench_instrumented "obs no-op sink" (fun () -> Mitos_obs.Obs.disabled);
    bench_instrumented "obs enabled" (fun () ->
        Mitos_obs.Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) ());
    bench_audit "mitos, audit disabled" false;
    bench_audit "mitos, audit enabled" true;
  ]

let bench_solvers =
  let items =
    Array.of_list
      (List.map
         (fun ty -> Mitos.Solver.item params ty)
         [ Tag_type.Network; Tag_type.File; Tag_type.Process ])
  in
  [
    Test.make ~name:"solver KKT (3 items)"
      (Staged.stage (fun () -> ignore (Mitos.Solver.solve_kkt params items)));
    Test.make ~name:"solver B&B exact (3 items)"
      (Staged.stage
         (let p =
            Mitos.Params.make ~tau:1.0 ~tau_scale:1.0 ~total_tag_space:10_000
              ~mem_capacity:1_000 ()
          in
          let small =
            Array.of_list
              (List.map
                 (fun ty -> Mitos.Solver.item p ty)
                 [ Tag_type.Network; Tag_type.File; Tag_type.Process ])
          in
          fun () -> ignore (Mitos.Solver.solve_branch_and_bound p small)));
    Test.make ~name:"analysis crossover"
      (Staged.stage (fun () ->
           ignore
             (Mitos.Analysis.crossover_count params Tag_type.Network
                ~pollution:5000.0)));
  ]

let bench_infra =
  let prog =
    (Mitos_workload.Crypto.build ~input_len:64 ~seed:1 ()).Mitos_workload.Workload.program
  in
  let trace =
    Mitos_workload.Workload.record (Mitos_workload.Crypto.build ~input_len:64 ~seed:1 ())
  in
  let encoded = Mitos_replay.Trace.to_string trace in
  [
    Test.make ~name:"postdominators (crypto program)"
      (Staged.stage (fun () -> ignore (Mitos_flow.Postdom.compute prog)));
    Test.make ~name:"trace decode (crypto)"
      (Staged.stage (fun () -> ignore (Mitos_replay.Trace.of_string encoded)));
  ]

let all_micro =
  Test.make_grouped ~name:"mitos"
    (bench_decision_scaling @ bench_alg2 @ bench_shadow @ bench_engine
    @ bench_solvers @ bench_infra)

let run_micro () =
  print_endline "\n=== Microbenchmarks (bechamel) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances all_micro in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image

(* -- decision fast-path summary (BENCH_decisions.json) ----------------- *)

let time_ns_per ~iters f =
  (* warm up once so table/cache population is off the clock *)
  f ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let write_bench_json ~jobs ~shards path =
  let stats = Tag_stats.create () in
  for i = 1 to 1_000 do
    Tag_stats.incr stats (net i)
  done;
  let env = Mitos.Decision.of_stats params stats in
  let subject = net 1 in
  let fast = Mitos.Decision.fast params in
  let alg1_direct =
    time_ns_per ~iters:2_000_000 (fun () ->
        ignore (Mitos.Decision.alg1 params env subject))
  in
  let alg1_fast =
    time_ns_per ~iters:2_000_000 (fun () ->
        ignore (Mitos.Decision.alg1_fast fast env subject))
  in
  let candidates = List.init 8 (fun i -> net (i + 1)) in
  let alg2_direct =
    time_ns_per ~iters:200_000 (fun () ->
        ignore (Mitos.Decision.alg2 params env ~space:4 candidates))
  in
  let alg2_fast =
    time_ns_per ~iters:200_000 (fun () ->
        ignore (Mitos.Decision.alg2_fast fast env ~space:4 candidates))
  in
  (* engine replay throughput over a prerecorded slice *)
  let built = Mitos_workload.Netbench.build ~seed:1 ~chunks:2 () in
  let trace = Mitos_workload.Workload.record built in
  let records = Mitos_replay.Trace.records trace in
  let slice = Array.sub records 0 (min 1_000 (Array.length records)) in
  let replay_ns =
    time_ns_per ~iters:50 (fun () ->
        let engine =
          Mitos_workload.Workload.engine_of
            ~policy:
              (Mitos_dift.Policies.mitos (E.Calib.sensitivity_params ()))
            built
        in
        Mitos_dift.Engine.attach_shadow engine
          ~mem_size:(Mitos_replay.Trace.mem_size trace);
        Array.iter (Mitos_dift.Engine.process_record engine) slice)
  in
  let records_per_sec = float_of_int (Array.length slice) /. (replay_ns *. 1e-9) in
  (* same replay with the decision flight recorder enabled *)
  let replay_audit_ns =
    time_ns_per ~iters:50 (fun () ->
        let engine =
          Mitos_workload.Workload.engine_of
            ~policy:
              (Mitos_dift.Policies.mitos (E.Calib.sensitivity_params ()))
            built
        in
        let audit = Mitos_obs.Audit.create ~capacity:(1 lsl 18) () in
        Mitos.Decision.set_audit (Some audit);
        Mitos_dift.Engine.instrument ~audit engine Mitos_obs.Obs.disabled;
        Mitos_dift.Engine.attach_shadow engine
          ~mem_size:(Mitos_replay.Trace.mem_size trace);
        Array.iter (Mitos_dift.Engine.process_record engine) slice;
        Mitos.Decision.set_audit None)
  in
  let audit_records_per_sec =
    float_of_int (Array.length slice) /. (replay_audit_ns *. 1e-9)
  in
  (* pool speedup on an embarrassingly parallel alg2 workload *)
  let task _i =
    let acc = ref 0 in
    for _ = 1 to 20_000 do
      acc :=
        !acc
        + List.length (Mitos.Decision.alg2 params env ~space:4 candidates)
    done;
    !acc
  in
  let inputs = List.init (4 * max 1 jobs) (fun i -> i) in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let seq_wall, seq_r = wall (fun () -> List.map task inputs) in
  let par_wall, par_r =
    wall (fun () ->
        Pool.with_pool ~jobs (fun pool -> Pool.map pool ~f:task inputs))
  in
  assert (seq_r = par_r);
  (* the multicore-scaling row the perf gate tracks: a fixed 8-task
     battery at a fixed 4-domain pool, independent of --jobs, so the
     figure is comparable across baselines *)
  let inputs4 = List.init 8 (fun i -> i) in
  let seq4_wall, seq4_r = wall (fun () -> List.map task inputs4) in
  let par4_wall, par4_r =
    wall (fun () ->
        Pool.with_pool ~jobs:4 (fun pool -> Pool.map pool ~f:task inputs4))
  in
  assert (seq4_r = par4_r);
  let pool_speedup_4x = seq4_wall /. par4_wall in
  (* multi-engine replay scaling: [n_par] independent engines each
     replaying the full slice, run back-to-back and then on a
     4-domain pool. Each task builds its own workload/engine so no
     mutable state crosses domains; [slice] itself is read-only. *)
  let n_par = 4 in
  let par_replay_task _i =
    let b = Mitos_workload.Netbench.build ~seed:1 ~chunks:2 () in
    let engine =
      Mitos_workload.Workload.engine_of
        ~policy:(Mitos_dift.Policies.mitos (E.Calib.sensitivity_params ()))
        b
    in
    Mitos_dift.Engine.attach_shadow engine
      ~mem_size:(Mitos_replay.Trace.mem_size trace);
    Array.iter (Mitos_dift.Engine.process_record engine) slice
  in
  let par_inputs = List.init n_par (fun i -> i) in
  let rep1_wall, _ = wall (fun () -> List.iter par_replay_task par_inputs) in
  let rep4_wall, _ =
    wall (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            ignore (Pool.map pool ~f:par_replay_task par_inputs)))
  in
  let par_records_per_sec =
    float_of_int (n_par * Array.length slice) /. rep4_wall
  in
  let replay_speedup_4x = rep1_wall /. rep4_wall in
  (* per-shard occupancy of a 4-way sharded shadow after a
     deterministic replay: the occupancy split and its max/mean
     imbalance depend only on the trace and the shard hash, so the
     imbalance is gateable at the standard tolerance. The full trace
     is replayed (not [slice]) because taint sources only appear past
     the first thousand records of the netbench trace. *)
  let shard_occ =
    let config =
      { Mitos_dift.Engine.default_config with
        Mitos_dift.Engine.shadow_shards = Some 4 }
    in
    let engine =
      Mitos_workload.Workload.engine_of ~config
        ~policy:Mitos_dift.Policies.propagate_all built
    in
    Mitos_dift.Engine.attach_shadow engine
      ~mem_size:(Mitos_replay.Trace.mem_size trace);
    Array.iter (Mitos_dift.Engine.process_record engine) records;
    Shadow.shard_occupancy (Mitos_dift.Engine.shadow engine)
  in
  let shard_total = Array.fold_left ( + ) 0 shard_occ in
  let shard_imbalance =
    if shard_total = 0 then 1.0
    else
      float_of_int (Array.fold_left max 0 shard_occ)
      /. (float_of_int shard_total /. float_of_int (Array.length shard_occ))
  in
  let shard_occ_json =
    String.concat ", "
      (Array.to_list (Array.map string_of_int shard_occ))
  in
  (* decision-service round-trip: the loadgen's decide mix against a
     loopback server, so the row measures codec + service dispatch
     without socket noise and stays runnable on any CI box *)
  let net_report, net_par_rps, net_speedup_4x =
    (* the bench service runs with a 4-way sharded estimator: the
       sharded path is the one the scaling row below exercises, and
       shards=1 traffic is covered by the service tests *)
    let service =
      Mitos_net.Server.create
        ~config:
          { Mitos_net.Server.default_config with
            Mitos_net.Server.estimator_shards = 4 }
        ~params:(E.Calib.sensitivity_params ()) ()
    in
    let name = Printf.sprintf "bench-%d" (Unix.getpid ()) in
    let listener =
      Mitos_net.Server.start service (Mitos_net.Transport.Memory name)
    in
    Fun.protect
      ~finally:(fun () -> Mitos_net.Server.stop listener)
      (fun () ->
        let client ~requests ~seed () =
          match
            Mitos_net.Loadgen.run
              ~config:
                { Mitos_net.Loadgen.default_config with
                  Mitos_net.Loadgen.requests; seed }
              (Mitos_net.Transport.Memory name)
          with
          | Ok r -> r
          | Error err -> failwith (Mitos_net.Client.error_to_string err)
        in
        let r = client ~requests:2_000 ~seed:7 () in
        (* same total request volume split across 4 concurrent clients
           on a 4-domain pool: the memory loopback runs the service
           handler on each client's domain, so this hammers the shared
           sharded estimator/decision path from 4 domains at once *)
        let par_wall, _ =
          wall (fun () ->
              Pool.with_pool ~jobs:4 (fun pool ->
                  ignore
                    (Pool.map pool
                       ~f:(fun s -> client ~requests:500 ~seed:(100 + s) ())
                       (List.init 4 (fun i -> i)))))
        in
        let par_rps = 2_000.0 /. par_wall in
        (r, par_rps, par_rps /. r.Mitos_net.Loadgen.throughput_rps))
  in
  (* fleet telemetry federation: 8 in-process loopback decision
     servers, each preloaded with a little decide traffic, scraped
     over the wire protocol and merged by the Fleet aggregator — the
     row gates the cost of one full scrape-and-merge round *)
  let fleet_node_count = 8 in
  let fleet_scrape_rounds = 50 in
  let fleet_mean_ns, fleet_scrapes_per_sec, fleet_merged_series =
    let mk i =
      let name = Printf.sprintf "bench-fleet-%d-%d" (Unix.getpid ()) i in
      let service =
        Mitos_net.Server.create
          ~config:
            { Mitos_net.Server.default_config with
              Mitos_net.Server.node_id = Printf.sprintf "bench%d" i }
          ~params:(E.Calib.sensitivity_params ()) ()
      in
      let listener =
        Mitos_net.Server.start service (Mitos_net.Transport.Memory name)
      in
      (match
         Mitos_net.Loadgen.run
           ~config:
             { Mitos_net.Loadgen.default_config with
               Mitos_net.Loadgen.requests = 100; seed = 40 + i }
           (Mitos_net.Transport.Memory name)
       with
      | Ok _ -> ()
      | Error err -> failwith (Mitos_net.Client.error_to_string err));
      (name, listener)
    in
    let members = List.init fleet_node_count mk in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (_, l) -> Mitos_net.Server.stop l) members)
      (fun () ->
        let fetchers =
          List.map
            (fun (name, _) ->
              let client =
                match
                  Mitos_net.Client.connect (Mitos_net.Transport.Memory name)
                with
                | Ok c -> c
                | Error err ->
                  failwith (Mitos_net.Client.error_to_string err)
              in
              ( name,
                fun () ->
                  match Mitos_net.Client.telemetry client with
                  | Ok r ->
                    Ok
                      { Mitos_obs.Fleet.node = r.Mitos_net.Wire.node;
                        healthy = r.Mitos_net.Wire.healthy;
                        health = r.Mitos_net.Wire.health;
                        snapshot = r.Mitos_net.Wire.snapshot }
                  | Error err ->
                    Error (Mitos_net.Client.error_to_string err) ))
            members
        in
        let fleet = Mitos_obs.Fleet.create fetchers in
        let at = ref 0.0 in
        let fleet_wall, () =
          wall (fun () ->
              for _ = 1 to fleet_scrape_rounds do
                at := !at +. 1.0;
                Mitos_obs.Fleet.scrape fleet ~at:!at
              done)
        in
        ( fleet_wall *. 1e9 /. float_of_int fleet_scrape_rounds,
          float_of_int fleet_scrape_rounds /. fleet_wall,
          List.length (Mitos_obs.Fleet.merged fleet) ))
  in
  (* burn-rate alert engine: cost of one observe (tsdb append plus
     two-rule evaluation over tight windows) on a synthetic stream
     that flaps in and out of breach, so pending/firing/resolve
     transitions and incident-ring writes are all on the clock *)
  let alert_obs_count = 10_000 in
  let run_alert_bench () =
    let a =
      Mitos_obs.Alerts.create
        ~rules:
          [
            Mitos_obs.Alerts.rule ~name:"ratio" ~budget:0.05
              ~windows:
                [
                  { Mitos_obs.Alerts.fast = 16.0; slow = 64.0; burn = 2.0;
                    pair_severity = Mitos_obs.Alerts.Page };
                ]
              ~keep_firing:8.0 ~signal:"over_taint_ratio"
              ~cmp:Mitos_obs.Health.Le ~objective:0.5 ();
            Mitos_obs.Alerts.rule ~name:"p99" ~budget:0.1
              ~windows:
                [
                  { Mitos_obs.Alerts.fast = 64.0; slow = 256.0; burn = 1.5;
                    pair_severity = Mitos_obs.Alerts.Ticket };
                ]
              ~for_:16.0 ~signal:"decision_p99_ns"
              ~cmp:Mitos_obs.Health.Le ~objective:5e6 ();
          ]
        ()
    in
    for i = 1 to alert_obs_count do
      let at = float_of_int i in
      let ratio = if i mod 600 < 120 then 0.9 else 0.1 in
      let p99 = if i mod 900 < 300 then 8e6 else 1e6 in
      Mitos_obs.Alerts.observe a ~at
        [ ("over_taint_ratio", ratio); ("decision_p99_ns", p99) ]
    done;
    a
  in
  ignore (run_alert_bench ());
  let alert_wall, alert_final = wall run_alert_bench in
  let alert_eval_ns = alert_wall *. 1e9 /. float_of_int alert_obs_count in
  let alert_incidents = Mitos_obs.Alerts.incidents_total alert_final in
  (* chaos fleet sustained throughput: the judge's bench preset drives
     the seeded tenant schedule against 3 real loopback nodes under
     the standard fault plan (kill+restart, 0.5% frame corruption, a
     slow window). requests_per_sec is wall-clock; p99_virtual_ns is
     the virtual latency model and therefore deterministic, so a
     routing or failover regression moves it at zero noise. *)
  let chaos_row =
    match Mitos_chaos.Judge.preset "bench" with
    | None -> failwith "chaos bench preset missing"
    | Some scenario -> (
        match Mitos_chaos.Judge.run scenario with
        | Ok report -> Mitos_chaos.Judge.bench_row report
        | Error msg -> failwith ("chaos fleet bench: " ^ msg))
  in
  let chaos_num field =
    match
      Option.bind
        (Mitos_util.Minijson.member field chaos_row)
        Mitos_util.Minijson.to_float
    with
    | Some v -> v
    | None -> 0.0
  in
  (* instrumented-mutex fast path (one uncontended lock/unlock pair)
     next to a bare mutex pair, plus the run's accumulated contention
     totals — every hot lock in the process is a Contended, so the
     pool-speedup section above has already exercised them *)
  let pair_lock = Mitos_obs.Contended.create "bench_pair" in
  let uncontended_pair_ns =
    time_ns_per ~iters:2_000_000 (fun () ->
        Mitos_obs.Contended.lock pair_lock;
        Mitos_obs.Contended.unlock pair_lock)
  in
  let raw_mu = Mutex.create () in
  let raw_mutex_pair_ns =
    time_ns_per ~iters:2_000_000 (fun () ->
        Mutex.lock raw_mu;
        Mutex.unlock raw_mu)
  in
  let lock_acq, lock_cont, lock_wait_ns, lock_hold_ns =
    List.fold_left
      (fun (acq, cont, wait, hold) (_, (st : Mitos_obs.Contended.stats)) ->
        ( acq + st.Mitos_obs.Contended.acquisitions,
          cont + st.Mitos_obs.Contended.contended,
          wait + st.Mitos_obs.Contended.wait_ns_total,
          hold + st.Mitos_obs.Contended.hold_ns_total ))
      (0, 0, 0, 0)
      (Mitos_obs.Contended.aggregate ())
  in
  (* GC allocation pressure of the replay hot path: word counts are
     exact (not sampled), so the per-record figure is deterministic
     enough to gate at the standard tolerance *)
  let gc_engine =
    Mitos_workload.Workload.engine_of
      ~policy:(Mitos_dift.Policies.mitos (E.Calib.sensitivity_params ()))
      built
  in
  Mitos_dift.Engine.attach_shadow gc_engine
    ~mem_size:(Mitos_replay.Trace.mem_size trace);
  let g0 = Gc.quick_stat () in
  Array.iter (Mitos_dift.Engine.process_record gc_engine) slice;
  let g1 = Gc.quick_stat () in
  let per_record v0 v1 = (v1 -. v0) /. float_of_int (Array.length slice) in
  let minor_words_per_record =
    per_record g0.Gc.minor_words g1.Gc.minor_words
  in
  let promoted_words_per_record =
    per_record g0.Gc.promoted_words g1.Gc.promoted_words
  in
  let minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        {|{
  "schema": "mitos-bench-decisions/1",
  "jobs": %d,
  "shards": %d,
  "alg1": {
    "direct_ns": %.2f,
    "fast_ns": %.2f,
    "direct_decisions_per_sec": %.0f,
    "fast_decisions_per_sec": %.0f,
    "speedup": %.3f
  },
  "alg2_batch8_space4": {
    "direct_ns": %.2f,
    "fast_ns": %.2f,
    "speedup": %.3f
  },
  "engine_replay": {
    "records_per_sec": %.0f,
    "audit_records_per_sec": %.0f,
    "audit_overhead": %.3f,
    "par_records_per_sec": %.0f,
    "speedup_4x": %.3f
  },
  "pool": {
    "tasks": %d,
    "seq_seconds": %.4f,
    "par_seconds": %.4f,
    "speedup": %.3f,
    "speedup_4x": %.3f
  },
  "shadow_shards": {
    "shards": %d,
    "occupancy": [%s],
    "total": %d,
    "imbalance": %.3f
  },
  "net_decide_batch": {
    "batch": %d,
    "requests": %d,
    "mean_ns": %.0f,
    "p50_ns": %.0f,
    "p95_ns": %.0f,
    "p99_ns": %.0f,
    "requests_per_sec": %.0f,
    "par_requests_per_sec": %.0f,
    "speedup_4x": %.3f
  },
  "fleet_scrape": {
    "nodes": %d,
    "scrapes": %d,
    "mean_ns": %.0f,
    "scrapes_per_sec": %.0f,
    "merged_series": %d
  },
  "fleet": {
    "nodes": %.0f,
    "tenants": %.0f,
    "events": %.0f,
    "requests_per_sec": %.0f,
    "p99_virtual_ns": %.0f,
    "recall": %.3f
  },
  "alert_eval": {
    "rules": 2,
    "observations": %d,
    "ns_per_observation": %.0f,
    "incidents": %d
  },
  "lock_contention": {
    "uncontended_pair_ns": %.2f,
    "raw_mutex_pair_ns": %.2f,
    "acquisitions": %d,
    "contended": %d,
    "wait_ns_total": %d,
    "hold_ns_total": %d
  },
  "gc_pressure": {
    "records": %d,
    "minor_words_per_record": %.1f,
    "promoted_words_per_record": %.3f,
    "minor_collections": %d
  }
}
|}
        jobs shards alg1_direct alg1_fast (1e9 /. alg1_direct)
        (1e9 /. alg1_fast)
        (alg1_direct /. alg1_fast) alg2_direct alg2_fast
        (alg2_direct /. alg2_fast) records_per_sec audit_records_per_sec
        ((replay_audit_ns -. replay_ns) /. replay_ns)
        par_records_per_sec replay_speedup_4x
        (List.length inputs)
        seq_wall par_wall
        (seq_wall /. par_wall)
        pool_speedup_4x
        (Array.length shard_occ) shard_occ_json shard_total shard_imbalance
        Mitos_net.Loadgen.default_config.Mitos_net.Loadgen.batch
        net_report.Mitos_net.Loadgen.requests
        net_report.Mitos_net.Loadgen.mean_ns net_report.Mitos_net.Loadgen.p50_ns
        net_report.Mitos_net.Loadgen.p95_ns net_report.Mitos_net.Loadgen.p99_ns
        net_report.Mitos_net.Loadgen.throughput_rps net_par_rps net_speedup_4x
        fleet_node_count fleet_scrape_rounds fleet_mean_ns
        fleet_scrapes_per_sec fleet_merged_series
        (chaos_num "nodes") (chaos_num "tenants") (chaos_num "events")
        (chaos_num "requests_per_sec") (chaos_num "p99_virtual_ns")
        (chaos_num "recall")
        alert_obs_count alert_eval_ns alert_incidents
        uncontended_pair_ns
        raw_mutex_pair_ns lock_acq lock_cont lock_wait_ns lock_hold_ns
        (Array.length slice) minor_words_per_record promoted_words_per_record
        minor_collections);
  Printf.printf "wrote %s\n" path

(* -- live telemetry (--listen) ----------------------------------------- *)

(* A long `bench` run is exactly the kind of invocation an operator
   wants to scrape: with --listen we replay the netbench telemetry
   pilot once (so the registry, health watchdog and audit ring hold
   real data) and keep the exposition server up for the duration of
   the benchmark modes. The server lives on its own domain and the
   benchmark loops never touch it, so timings are unaffected. *)
let start_telemetry = function
  | None -> None
  | Some hostport ->
    let host, port =
      match String.rindex_opt hostport ':' with
      | Some i ->
        ( String.sub hostport 0 i,
          int_of_string
            (String.sub hostport (i + 1) (String.length hostport - i - 1)) )
      | None -> failwith ("--listen wants HOST:PORT, got " ^ hostport)
    in
    let p =
      E.Telemetry.pilot
        ~build:(fun () -> Mitos_workload.Netbench.build ~seed:42 ())
        ()
    in
    p.E.Telemetry.replay ();
    let server =
      Mitos_obs.Server.start ~host ~port (E.Telemetry.routes p.E.Telemetry.src)
    in
    Printf.printf "serving telemetry on http://%s/\n%!"
      (Mitos_obs.Server.addr server);
    Some server

(* -- entry point ------------------------------------------------------- *)

let () =
  (* argv: [mode] [report-path] with --jobs N / --listen HOST:PORT
     anywhere after the exe *)
  let jobs = ref (Pool.default_jobs ()) in
  let shards = ref 1 in
  let listen = ref None in
  let positional = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then begin
      (match Sys.argv.(i) with
      | "--jobs" when i + 1 < Array.length Sys.argv ->
        jobs := max 1 (int_of_string Sys.argv.(i + 1));
        parse (i + 2)
      | "--shards" when i + 1 < Array.length Sys.argv ->
        shards := max 1 (int_of_string Sys.argv.(i + 1));
        parse (i + 2)
      | "--listen" when i + 1 < Array.length Sys.argv ->
        listen := Some Sys.argv.(i + 1);
        parse (i + 2)
      | arg ->
        (match String.index_opt arg '=' with
        | Some eq when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
          jobs :=
            max 1
              (int_of_string
                 (String.sub arg (eq + 1) (String.length arg - eq - 1)))
        | Some eq
          when String.length arg > 9 && String.sub arg 0 9 = "--shards=" ->
          shards :=
            max 1
              (int_of_string
                 (String.sub arg (eq + 1) (String.length arg - eq - 1)))
        | Some eq
          when String.length arg > 9 && String.sub arg 0 9 = "--listen=" ->
          listen :=
            Some (String.sub arg (eq + 1) (String.length arg - eq - 1))
        | _ -> positional := arg :: !positional);
        parse (i + 1))
    end
  in
  parse 1;
  (* every shadow store built by the experiments below inherits this
     process default; for a fixed shard count the experiment output
     stays byte-identical across --jobs *)
  Shadow.set_default_shards !shards;
  let server = start_telemetry !listen in
  let mode, rest =
    match List.rev !positional with
    | [] -> ("all", [])
    | mode :: rest -> (mode, rest)
  in
  let with_jobs f = Pool.with_pool ~jobs:!jobs (fun pool -> f ~pool) in
  (match mode with
  | "quick" -> with_jobs (fun ~pool -> run_experiments ~pool ())
  | "micro" ->
    run_micro ();
    print_newline ();
    write_bench_json ~jobs:!jobs ~shards:!shards "BENCH_decisions.json"
  | "obs" -> E.Report.print (E.Obs_overhead.run ())
  | "report" ->
    with_jobs (fun ~pool ->
        write_markdown ~pool
          (match rest with path :: _ -> path | [] -> "bench_report.md"))
  | _ ->
    with_jobs (fun ~pool -> run_experiments ~pool ());
    E.Report.print (E.Obs_overhead.run ());
    run_micro ();
    print_newline ();
    write_bench_json ~jobs:!jobs ~shards:!shards "BENCH_decisions.json");
  Option.iter Mitos_obs.Server.stop server;
  print_newline ()
