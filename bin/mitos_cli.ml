(* mitos-cli: drive the MITOS reproduction from the shell.

   Subcommands:
     list                     enumerate workloads and experiments
     run WORKLOAD             execute a workload under a policy
     experiment ID            regenerate a figure/table of the paper
     record WORKLOAD FILE     record an execution trace to a file
     replay WORKLOAD FILE     replay a recorded trace under a policy
     attack                   the Table II FAROS-vs-MITOS comparison *)

open Cmdliner
open Mitos_dift
module W = Mitos_workload
module Calib = Mitos_experiments.Calib

(* -- shared arguments -------------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let tau_arg =
  Arg.(
    value
    & opt float 0.1
    & info [ "tau" ] ~docv:"TAU"
        ~doc:"Under/over-tainting trade-off weight (paper's tau).")

let alpha_arg =
  Arg.(
    value
    & opt float 1.5
    & info [ "alpha" ] ~docv:"ALPHA" ~doc:"Fairness degree (paper's alpha).")

let u_net_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "u-net" ] ~docv:"W"
        ~doc:"Undertainting weight of netflow tags (paper's u_netflow).")

let u_export_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "u-export" ] ~docv:"W"
        ~doc:
          "Undertainting weight of export-table tags (Table II uses \
           --u-net 50 --u-export 50 --tau 0.01).")

let policy_names =
  [ "faros"; "propagate-all"; "block-all"; "minos"; "probabilistic";
    "threshold"; "mitos"; "mitos-all-flows" ]

let policy_arg =
  Arg.(
    value
    & opt string "mitos"
    & info [ "policy"; "p" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf "Propagation policy: one of %s."
             (String.concat ", " policy_names)))

let make_params ~tau ~alpha ~u_net ~u_export =
  Mitos.Params.with_u
    (Calib.sensitivity_params ~tau ~alpha ~u_net ())
    Mitos_tag.Tag_type.Export_table u_export

let resolve_policy name params =
  match name with
  | "faros" -> Ok (Policies.faros, false)
  | "propagate-all" -> Ok (Policies.propagate_all, false)
  | "block-all" -> Ok (Policies.block_all, false)
  | "minos" -> Ok (Policies.minos_width, false)
  | "probabilistic" -> Ok (Policies.probabilistic ~seed:1 ~p:0.5, false)
  | "threshold" -> Ok (Policies.pollution_threshold ~limit:20_000, false)
  | "mitos" -> Ok (Policies.mitos params, false)
  | "mitos-all-flows" -> Ok (Calib.mitos_all_flows params, true)
  | other -> Error (Printf.sprintf "unknown policy %S" other)

let engine_config ~route_direct =
  if route_direct then Calib.attack_engine_config else Engine.default_config

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `mitos-cli list').")

let build_workload name ~seed =
  match W.Registry.find name with
  | entry -> Ok (entry.W.Registry.build ~seed)
  | exception Not_found ->
    Error
      (Printf.sprintf "unknown workload %S; run `mitos-cli list'" name)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("mitos-cli: " ^ msg);
    exit 2

(* Commands that read files, parse foreign input or talk to a server
   funnel through this: an expected failure becomes a one-line error
   and exit code 2, never a raw OCaml backtrace. *)
let protected f =
  try f () with
  | Sys_error msg -> or_die (Error msg)
  | Failure msg -> or_die (Error msg)
  | Mitos_util.Codec.Malformed msg ->
    or_die (Error ("malformed trace: " ^ msg))
  | Unix.Unix_error (err, fn, arg) ->
    or_die
      (Error
         (Printf.sprintf "%s%s: %s" fn
            (if arg = "" then "" else " " ^ arg)
            (Unix.error_message err)))

(* -- parallelism -------------------------------------------------------- *)

module Pool = Mitos_parallel.Pool

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Experiment worker domains (0 = all cores). Output is \
           byte-identical for every setting.")

let with_jobs jobs f =
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  Pool.with_pool ~jobs (fun pool -> f ~pool)

(* -- observability ------------------------------------------------------ *)

module Obs = Mitos_obs.Obs

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the run to $(docv) (load it \
           in chrome://tracing or ui.perfetto.dev).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write Prometheus text metrics of the run to $(docv).")

let sample_every_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "sample-every" ] ~docv:"N"
        ~doc:"Observability sampling period, in processed records.")

let obs_clock_arg =
  Arg.(
    value
    & opt string "logical"
    & info [ "obs-clock" ] ~docv:"CLOCK"
        ~doc:
          "Observability clock: 'logical' (deterministic ticks; exports \
           are byte-identical across runs with the same seed) or 'real' \
           (wall-clock microseconds).")

type obs_opts = {
  trace_out : string option;
  metrics_out : string option;
  sample_every : int;
  obs : Obs.t option;
}

(* An Obs context is created only when an export was asked for; it is
   also routed into the core decision/solver probes for the duration
   of the command. *)
let setup_obs trace_out metrics_out sample_every clock_name =
  if sample_every < 1 then
    or_die (Error "--sample-every must be at least 1");
  let obs =
    if trace_out = None && metrics_out = None then None
    else begin
      let clock =
        match clock_name with
        | "logical" -> Mitos_obs.Obs_clock.logical ()
        | "real" -> Mitos_obs.Obs_clock.real ()
        | other ->
          or_die
            (Error
               (Printf.sprintf "unknown --obs-clock %S (logical or real)"
                  other))
      in
      let obs = Obs.create ~clock () in
      Mitos.Decision.set_obs (Some obs);
      Mitos.Solver.set_obs (Some obs);
      Some obs
    end
  in
  { trace_out; metrics_out; sample_every; obs }

let obs_term =
  Term.(
    const setup_obs $ trace_out_arg $ metrics_out_arg $ sample_every_arg
    $ obs_clock_arg)

let instrument_engine opts engine =
  match opts.obs with
  | None -> ()
  | Some obs ->
    Engine.instrument ~sample_every:opts.sample_every engine obs;
    Metrics.attach_sampler ~sample_every:opts.sample_every
      ~registry:(Obs.registry obs) engine

let finish_obs opts =
  match opts.obs with
  | None -> ()
  | Some obs ->
    Mitos.Decision.set_obs None;
    Mitos.Solver.set_obs None;
    let write what path contents =
      try
        Obs.write_file path contents;
        Printf.printf "wrote %s to %s\n" what path
      with Sys_error msg -> or_die (Error msg)
    in
    Option.iter
      (fun path -> write "Chrome trace" path (Obs.chrome_trace_json obs))
      opts.trace_out;
    Option.iter
      (fun path -> write "Prometheus metrics" path (Obs.prometheus obs))
      opts.metrics_out

(* -- live telemetry ------------------------------------------------------ *)

module Server = Mitos_obs.Server
module Health = Mitos_obs.Health
module Alerts = Mitos_obs.Alerts
module Tsdb = Mitos_obs.Tsdb
module Tele = Mitos_experiments.Telemetry

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve live telemetry on $(docv) while the command runs: GET \
           /metrics (Prometheus), /healthz (SLO verdict; non-200 on \
           breach), /snapshot.json, /tracez, /auditz. Port 0 picks a free \
           port (the bound address is printed). The process keeps serving \
           after the work completes; interrupt (Ctrl-C) to exit.")

let slo_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "slo" ] ~docv:"RULE"
        ~doc:
          "Add a health SLO rule, grammar [NAME:]SIGNAL(<=|<|>=|>)BOUND \
           — e.g. over_taint_ratio<=0.9 or p99:decision_p99_ticks<=64. \
           Repeatable; added to the default rule set.")

let parse_rules slo =
  Tele.default_rules @ List.map (fun s -> or_die (Health.parse_rule s)) slo

let burn_slo_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "burn-slo" ] ~docv:"RULE"
        ~doc:
          "Add a multi-window burn-rate alert rule, grammar \
           [NAME:]SIGNAL(<=|<|>=|>)OBJECTIVE[;budget=B][;windows=FAST/\
           SLOW@BURN[@page|ticket],...][;for=D][;keep=K] — e.g. \
           p99:decision_p99_ns<=5e6;budget=0.05;windows=30/120@4@page;\
           for=5;keep=30. Repeatable; enables the /alerts, /query and \
           /alertz endpoints and folds firing alerts into /healthz.")

let parse_burn_rules specs =
  List.map (fun s -> or_die (Alerts.parse_rule s)) specs

(* The burn-rate engine attached to a live server, sharing the obs
   tracer so alert transitions land in /tracez as instants. *)
let make_alerts ~obs specs =
  match specs with
  | [] -> None
  | specs ->
    let a = Alerts.create ~rules:(parse_burn_rules specs) () in
    Alerts.link_tracer a (Obs.tracer obs);
    Some a

let start_server ~listen routes =
  Option.map
    (fun spec ->
      let host, port, _path = or_die (Server.parse_url spec) in
      let server = Server.start ~host ~port routes in
      Printf.printf "serving telemetry on http://%s/\n%!" (Server.addr server);
      server)
    listen

(* Interruptible idle loop. SIGINT/SIGTERM set a flag instead of
   killing the process, so servers stop cleanly (listening sockets
   closed, domains joined) and a /metrics scraper sees a final flush
   rather than a dropped connection. [tick] runs about once a second
   while lingering — used for runtime telemetry sampling and health
   observations on live servers. *)
let shutdown_requested = Atomic.make false

let install_shutdown_handlers () =
  let request _signum = Atomic.set shutdown_requested true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle request)
  with Invalid_argument _ | Sys_error _ -> ()

let linger ?tick () =
  install_shutdown_handlers ();
  let since_tick = ref 0.0 in
  while not (Atomic.get shutdown_requested) do
    (try Unix.sleepf 0.2
     with Unix.Unix_error (EINTR, _, _) -> ());
    since_tick := !since_tick +. 0.2;
    if !since_tick >= 1.0 then begin
      since_tick := 0.0;
      match tick with
      | Some f when not (Atomic.get shutdown_requested) -> f ()
      | Some _ | None -> ()
    end
  done;
  print_endline "shutting down"

let finish_server ?tick = function
  | None -> ()
  | Some server ->
    print_endline
      "telemetry still serving; interrupt (Ctrl-C or SIGTERM) to exit";
    linger ?tick ();
    Server.stop server

(* The netbench pilot behind [experiment --listen] and [attack
   --listen]: record + oracle-policy sweep + audited MITOS replay, so
   every decision/shadow/audit metric family is populated and a health
   verdict exists before (and while) the real work runs. *)
let telemetry_pilot ~pool ~slo () =
  Tele.pilot ~rules:(parse_rules slo) ~pool
    ~build:(fun () -> or_die (build_workload "netbench" ~seed:42))
    ()

(* -- list ---------------------------------------------------------------- *)

let experiments =
  [
    ("fig3", "cost function shapes");
    ("fig7", "marginal costs and decisions over time (tau sweep)");
    ("fig8", "alpha vs fairness");
    ("fig9", "u_netflow sweep");
    ("table2", "FAROS vs MITOS on the in-memory attack");
    ("latency", "detection latency (first alarm step) per shell/policy");
    ("exfil", "exfiltration-tracking case study (sink attribution)");
    ("hw", "hardware-offload cost model (paper SVI)");
    ("matrix", "workload x policy propagation-rate matrix (slow)");
    ("conformance", "litmus flow classes x policies table");
    ("ablations", "eviction / recompute / staleness / solution quality");
    ("quick", "a fast deterministic subset (fig3 + conformance + hw)");
    ("all", "everything above");
  ]

let list_cmd =
  let run () =
    print_endline "Workloads:";
    List.iter
      (fun e ->
        Printf.printf "  %-24s %s\n" e.W.Registry.name e.W.Registry.summary)
      W.Registry.all;
    print_endline "\nExperiments:";
    List.iter (fun (id, doc) -> Printf.printf "  %-24s %s\n" id doc) experiments;
    print_endline "\nPolicies:";
    Printf.printf "  %s\n" (String.concat ", " policy_names)
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, experiments and policies.")
    Term.(const run $ const ())

(* -- run ------------------------------------------------------------------- *)

let print_summary s =
  let t = Mitos_util.Table.create ~header:Metrics.header () in
  Mitos_util.Table.add_row t (Metrics.row s);
  Mitos_util.Table.print t;
  Printf.printf "wall time: %.3fs\n" s.Metrics.wall_seconds

let run_cmd =
  let run name policy_name seed tau alpha u_net u_export obs_opts =
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, route_direct = or_die (resolve_policy policy_name params) in
    let built = or_die (build_workload name ~seed) in
    let engine =
      W.Workload.engine_of ~config:(engine_config ~route_direct) ~policy built
    in
    instrument_engine obs_opts engine;
    Engine.attach engine (W.Workload.machine_of built);
    print_summary (Metrics.measure_run engine);
    finish_obs obs_opts
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a workload under a propagation policy.")
    Term.(
      const run $ workload_arg $ policy_arg $ seed_arg $ tau_arg $ alpha_arg
      $ u_net_arg $ u_export_arg $ obs_term)

(* -- experiment --------------------------------------------------------------- *)

let experiment_cmd =
  let module E = Mitos_experiments in
  let run id jobs shards listen slo =
    protected @@ fun () ->
    if shards < 1 then or_die (Error "--shards must be at least 1");
    (* every shadow store the experiments build inherits this process
       default; for a fixed shard count the report is byte-identical
       across --jobs *)
    Mitos_tag.Shadow.set_default_shards shards;
    with_jobs jobs (fun ~pool ->
        (* Telemetry first: populate every metric family with the pilot
           and bring the server up before the sections run, so a scrape
           mid-experiment sees live data. *)
        let tele =
          match listen with
          | None -> None
          | Some _ ->
            let p = telemetry_pilot ~pool ~slo () in
            let server = start_server ~listen (Tele.routes p.Tele.src) in
            p.Tele.replay ();
            Some (p, server)
        in
        let pool = Some pool in
        (* Sections are thunks so [--listen] progress is real: the
           sections-done gauge moves between sections, not after all
           of them. Each thunk yields the reports it printed. *)
        let sections : (unit -> E.Report.section list) list =
          let one f = [ (fun () -> [ f () ]) ] in
          match id with
          | "fig3" -> one (fun () -> E.Fig3.run ?pool ())
          | "fig7" -> one (fun () -> E.Fig7.run ?pool ())
          | "fig8" -> one (fun () -> E.Fig8.run ?pool ())
          | "fig9" -> one (fun () -> E.Fig9.run ?pool ())
          | "table2" -> one (fun () -> E.Table2.run ?pool ())
          | "latency" -> one (fun () -> E.Latency.run ?pool ())
          | "exfil" -> one (fun () -> E.Exfil_study.run ())
          | "hw" -> one (fun () -> E.Hw_model.run ())
          | "matrix" -> one (fun () -> E.Matrix.run ?pool ())
          | "conformance" -> one (fun () -> E.Validation.run ?pool ())
          | "ablations" -> [ (fun () -> E.Ablations.run_all ?pool ()) ]
          | "quick" ->
            [
              (fun () -> [ E.Fig3.run ?pool () ]);
              (fun () -> [ E.Validation.run ?pool () ]);
              (fun () -> [ E.Hw_model.run () ]);
            ]
          | "all" ->
            let recorded = lazy (E.Fig7.record_netbench ()) in
            [
              (fun () -> [ E.Fig3.run ?pool () ]);
              (fun () ->
                [ E.Fig7.run ~recorded:(Lazy.force recorded) ?pool () ]);
              (fun () ->
                [ E.Fig8.run ~recorded:(Lazy.force recorded) ?pool () ]);
              (fun () ->
                [ E.Fig9.run ~recorded:(Lazy.force recorded) ?pool () ]);
              (fun () -> [ E.Table2.run ?pool () ]);
              (fun () -> [ E.Latency.run ?pool () ]);
              (fun () -> [ E.Exfil_study.run () ]);
              (fun () -> [ E.Hw_model.run () ]);
              (fun () -> E.Ablations.run_all ?pool ());
            ]
          | other ->
            or_die (Error (Printf.sprintf "unknown experiment %S" other))
        in
        let sections_done =
          Option.map
            (fun (p, _) ->
              Mitos_obs.Registry.gauge
                (Obs.registry p.Tele.src.Tele.obs)
                ~help:"experiment sections completed"
                "mitos_cli_sections_done")
            tele
        in
        List.iter
          (fun thunk ->
            List.iter E.Report.print (thunk ());
            Option.iter
              (fun g ->
                Mitos_obs.Registry.set_gauge g
                  (Mitos_obs.Registry.gauge_value g +. 1.0))
              sections_done)
          sections;
        Option.iter (fun (_, server) -> finish_server server) tele)
  in
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see `mitos-cli list').")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a figure or table of the paper.")
    Term.(
      const run $ id_arg $ jobs_arg
      $ Arg.(
          value
          & opt int 1
          & info [ "shards" ] ~docv:"N"
              ~doc:
                "Shadow-store shards for every engine the experiments \
                 build (1 = unsharded). Output is byte-identical across \
                 --jobs for a fixed N.")
      $ listen_arg $ slo_arg)

(* -- record / replay -------------------------------------------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"FILE" ~doc:"Trace file path.")

let record_cmd =
  let run name file seed =
    protected @@ fun () ->
    let built = or_die (build_workload name ~seed) in
    let trace = W.Workload.record built in
    Mitos_replay.Trace.save trace file;
    Printf.printf "recorded %d instructions of %s to %s\n"
      (Mitos_replay.Trace.length trace)
      name file
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Record a workload execution trace to a file (the PANDA step).")
    Term.(const run $ workload_arg $ file_arg $ seed_arg)

let replay_cmd =
  let run name file seed policy_name tau alpha u_net u_export obs_opts listen
      slo =
    protected @@ fun () ->
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, route_direct = or_die (resolve_policy policy_name params) in
    let built = or_die (build_workload name ~seed) in
    let trace = Mitos_replay.Trace.load file in
    (* With --listen the replay itself is the telemetry source: force
       an obs context, wire a health watchdog into the sampler, and
       bring the server up before the first record is processed. *)
    let obs_opts =
      match (listen, obs_opts.obs) with
      | None, _ | _, Some _ -> obs_opts
      | Some _, None ->
        let obs = Obs.create ~clock:(Mitos_obs.Obs_clock.logical ()) () in
        Mitos.Decision.set_obs (Some obs);
        Mitos.Solver.set_obs (Some obs);
        { obs_opts with obs = Some obs }
    in
    let health, observe, audit =
      match (listen, obs_opts.obs) with
      | Some _, Some obs ->
        let health = Health.create ~rules:(parse_rules slo) () in
        Health.link_tracer health (Obs.tracer obs);
        let audit = Mitos_obs.Audit.create () in
        Mitos.Decision.set_audit (Some audit);
        let engine_cell = ref None in
        let observe (s : Metrics.sample) =
          Option.iter
            (fun engine ->
              Mitos_obs.Health.observe health
                ~at:(float_of_int s.Metrics.at_step)
                (Tele.standard_signals ~obs engine s))
            !engine_cell
        in
        (Some (health, engine_cell), Some observe, Some audit)
      | _ -> (None, None, None)
    in
    let engine =
      W.Workload.replay_engine
        ~config:(engine_config ~route_direct)
        ?obs:obs_opts.obs ~sample_every:obs_opts.sample_every ?observe ?audit
        ~policy built trace
    in
    Option.iter (fun (_, cell) -> cell := Some engine) health;
    let server =
      match obs_opts.obs with
      | Some obs when listen <> None ->
        let src =
          Tele.source
            ?health:(Option.map fst health)
            ?audit
            ~progress:(fun () -> Engine.progress engine)
            obs
        in
        start_server ~listen (Tele.routes src)
      | _ -> None
    in
    let t0 = Unix.gettimeofday () in
    ignore
      (Mitos_replay.Driver.run ?obs:obs_opts.obs trace
         ~f:(Engine.process_record engine));
    Mitos.Decision.set_audit None;
    print_summary
      (Metrics.of_engine ~wall_seconds:(Unix.gettimeofday () -. t0) engine);
    finish_obs obs_opts;
    finish_server server
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recorded trace under a policy. The workload (and seed) \
          must match the recording so taint sources resolve identically. \
          With --listen, the replay serves its own live telemetry.")
    Term.(
      const run $ workload_arg $ file_arg $ seed_arg $ policy_arg $ tau_arg
      $ alpha_arg $ u_net_arg $ u_export_arg $ obs_term $ listen_arg
      $ slo_arg)

(* -- attack -------------------------------------------------------------------------- *)

let inspect_cmd =
  let run file =
    protected @@ fun () ->
    let trace = Mitos_replay.Trace.load file in
    (match Mitos_replay.Trace.find_meta trace "workload" with
    | Some w -> Printf.printf "workload: %s\n" w
    | None -> ());
    Format.printf "%a" Mitos_replay.Trace_stats.pp
      (Mitos_replay.Trace_stats.analyze trace);
    (match Mitos_replay.Trace_stats.syscall_histogram trace with
    | [] -> ()
    | hist ->
      print_endline "syscalls:";
      List.iter
        (fun (n, count) ->
          Printf.printf "  %-20s %d\n" (Mitos_system.Os.syscall_name n) count)
        hist);
    (match Mitos_replay.Trace_stats.loop_profile trace with
    | [] -> print_endline "loops: none"
    | loops ->
      print_endline "loops (busiest first):";
      List.iter
        (fun (l : Mitos_replay.Trace_stats.loop_info) ->
          Printf.printf
            "  header @%-5d body [%d..%d]  %d iterations, %d instructions\n"
            l.Mitos_replay.Trace_stats.header_pc
            l.Mitos_replay.Trace_stats.first_pc
            l.Mitos_replay.Trace_stats.last_pc
            l.Mitos_replay.Trace_stats.iterations
            l.Mitos_replay.Trace_stats.body_instructions)
        loops)
  in
  let file_pos0 =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file path.")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Analyze a recorded trace offline: instruction mix, \
          indirect-flow opportunity counts, hot program points.")
    Term.(const run $ file_pos0)

let disasm_cmd =
  let run name seed =
    let built = or_die (build_workload name ~seed) in
    Printf.printf "%s - %s\n\n" built.W.Workload.name
      built.W.Workload.description;
    Format.printf "%a" Mitos_isa.Program.pp built.W.Workload.program
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a workload's program.")
    Term.(const run $ workload_arg $ seed_arg)

let map_cmd =
  let run name policy_name seed tau alpha u_net u_export =
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, route_direct = or_die (resolve_policy policy_name params) in
    let built = or_die (build_workload name ~seed) in
    let engine =
      W.Workload.engine_of ~config:(engine_config ~route_direct) ~policy built
    in
    Engine.watch_confluence engine Mitos_tag.Tag_type.Network
      Mitos_tag.Tag_type.Export_table;
    Engine.attach engine (W.Workload.machine_of built);
    ignore (Engine.run engine);
    let module Layout = Mitos_system.Layout in
    print_string
      (Taint_map.render_regions
         ~highlight:(Mitos_tag.Tag_type.Network, Mitos_tag.Tag_type.Export_table)
         [
           ("stack", Layout.stack_base, Layout.stack_size);
           ("process space", Layout.process_base, Layout.process_size);
           ("kernel linking area", Layout.kernel_export_base,
            Layout.kernel_export_size);
           ("heap", Layout.heap_base, Layout.heap_size);
         ]
         (Engine.shadow engine));
    match Engine.first_alert_step engine with
    | Some step -> Printf.printf "\nnetflow+export-table alarm at step %d\n" step
    | None -> print_endline "\nno netflow+export-table confluence"
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:
         "Run a workload and render the taint map of every memory region \
          ('!' marks netflow+export-table bytes).")
    Term.(
      const run $ workload_arg $ policy_arg $ seed_arg $ tau_arg $ alpha_arg
      $ u_net_arg $ u_export_arg)

let why_cmd =
  let run name addr_str policy_name seed tau alpha u_net u_export =
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, route_direct = or_die (resolve_policy policy_name params) in
    let built = or_die (build_workload name ~seed) in
    let addr = int_of_string addr_str in
    let engine =
      W.Workload.engine_of ~config:(engine_config ~route_direct) ~policy built
    in
    Engine.record_history engine;
    Engine.attach engine (W.Workload.machine_of built);
    ignore (Engine.run engine);
    (match Engine.taint_history engine addr with
    | [] -> Printf.printf "byte %#x never received a tag under %s\n" addr policy_name
    | arrivals ->
      Printf.printf "taint timeline of byte %#x (%s, %s):\n" addr
        (Mitos_system.Layout.region_of addr)
        policy_name;
      List.iter
        (fun a ->
          Printf.printf "  step %-8d %-14s via %s\n" a.Engine.arr_step
            (Mitos_tag.Tag.to_string a.Engine.arr_tag)
            a.Engine.arr_via)
        arrivals);
    let tags = Mitos_tag.Shadow.tags_of_addr (Engine.shadow engine) addr in
    Printf.printf "final provenance list: [%s]\n"
      (String.concat "; " (List.map Mitos_tag.Tag.to_string tags))
  in
  let addr_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"ADDR" ~doc:"Byte address (decimal or 0x-hex).")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Run a workload with taint-history recording and print the full \
          timeline of how one byte became tainted.")
    Term.(
      const run $ workload_arg $ addr_arg $ policy_arg $ seed_arg $ tau_arg
      $ alpha_arg $ u_net_arg $ u_export_arg)

let trace_cmd =
  let run name policy_name seed from count tau alpha u_net u_export =
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, route_direct = or_die (resolve_policy policy_name params) in
    let built = or_die (build_workload name ~seed) in
    let engine =
      W.Workload.engine_of ~config:(engine_config ~route_direct) ~policy built
    in
    let shadow_tags loc =
      let shadow = Engine.shadow engine in
      match loc with
      | Mitos_flow.Loc.Reg r -> Mitos_tag.Shadow.tags_of_reg shadow r
      | Mitos_flow.Loc.Mem a -> Mitos_tag.Shadow.tags_of_addr shadow a
    in
    Engine.on_record engine (fun record ->
        let step = record.Mitos_isa.Machine.step in
        if step >= from && step < from + count then begin
          let written = Mitos_flow.Extract.written_locs record in
          let taint =
            List.filter_map
              (fun loc ->
                match shadow_tags loc with
                | [] -> None
                | tags ->
                  Some
                    (Printf.sprintf "%s<-[%s]"
                       (Mitos_flow.Loc.to_string loc)
                       (String.concat ";"
                          (List.map Mitos_tag.Tag.to_string tags))))
              written
          in
          Printf.printf "%8d  @%-5d %-28s %s\n" step
            record.Mitos_isa.Machine.pc
            (Mitos_isa.Instr.to_string record.Mitos_isa.Machine.instr)
            (String.concat " " taint)
        end);
    Engine.attach engine (W.Workload.machine_of built);
    ignore (Engine.run ~max_steps:(from + count) engine)
  in
  let from_arg =
    Arg.(value & opt int 0 & info [ "from" ] ~docv:"N" ~doc:"First step to print.")
  in
  let count_arg =
    Arg.(value & opt int 40 & info [ "count"; "n" ] ~docv:"M" ~doc:"Steps to print.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Single-step a workload under a policy, printing each \
          instruction and the taint of what it wrote.")
    Term.(
      const run $ workload_arg $ policy_arg $ seed_arg $ from_arg $ count_arg
      $ tau_arg $ alpha_arg $ u_net_arg $ u_export_arg)

let sites_cmd =
  let run name policy_name seed top tau alpha u_net u_export =
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, route_direct = or_die (resolve_policy policy_name params) in
    let built = or_die (build_workload name ~seed) in
    let engine =
      W.Workload.engine_of ~config:(engine_config ~route_direct) ~policy built
    in
    Engine.attach engine (W.Workload.machine_of built);
    ignore (Engine.run engine);
    let t =
      Mitos_util.Table.create
        ~header:[ "pc"; "instruction"; "ifp+"; "ifp-"; "block rate" ] ()
    in
    List.iteri
      (fun i (pc, prop, blocked) ->
        if i < top then
          Mitos_util.Table.add_row t
            [
              string_of_int pc;
              Mitos_isa.Instr.to_string
                (Mitos_isa.Program.instr built.W.Workload.program pc);
              string_of_int prop;
              string_of_int blocked;
              Printf.sprintf "%.0f%%"
                (100.0 *. float_of_int blocked
                /. float_of_int (max 1 (prop + blocked)));
            ])
      (Engine.site_profile engine);
    Mitos_util.Table.print t
  in
  let top_arg =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"K" ~doc:"Sites to show.")
  in
  Cmd.v
    (Cmd.info "sites"
       ~doc:
         "Profile the indirect-flow hot spots of a workload under a \
          policy: which instructions decide the most tags, and where \
          taint is being blocked.")
    Term.(
      const run $ workload_arg $ policy_arg $ seed_arg $ top_arg $ tau_arg
      $ alpha_arg $ u_net_arg $ u_export_arg)

let solve_cmd =
  let run spec tau alpha =
    (* spec like "network:3,file:1" - counts of items per type *)
    let params =
      Mitos.Params.make ~alpha ~tau ~tau_scale:1.0 ~total_tag_space:10_000
        ~mem_capacity:1_000 ()
    in
    let items =
      String.split_on_char ',' spec
      |> List.concat_map (fun part ->
             match String.split_on_char ':' (String.trim part) with
             | [ ty; n ] ->
               let ty = Mitos_tag.Tag_type.of_string (String.trim ty) in
               List.init (int_of_string n) (fun _ -> Mitos.Solver.item params ty)
             | _ -> or_die (Error (Printf.sprintf "bad item spec %S" part)))
      |> Array.of_list
    in
    let kkt = Mitos.Solver.solve_kkt params items in
    let greedy = Mitos.Solver.solve_greedy_integer params items in
    let exact, stats = Mitos.Solver.solve_branch_and_bound params items in
    let t =
      Mitos_util.Table.create
        ~header:[ "item"; "KKT (relaxed)"; "greedy"; "exact integer" ] ()
    in
    Array.iteri
      (fun j item ->
        Mitos_util.Table.add_row t
          [
            Printf.sprintf "%s[%d]"
              (Mitos_tag.Tag_type.to_string item.Mitos.Solver.ty) j;
            Printf.sprintf "%.3f" kkt.(j);
            string_of_int greedy.(j);
            string_of_int exact.(j);
          ])
      items;
    Mitos_util.Table.print t;
    let obj n = Mitos.Solver.objective params items n in
    Printf.printf
      "objectives: relaxed %.6f <= exact %.6f (B&B: %d nodes, %d pruned) \
       <= greedy %.6f\n"
      (obj kkt) stats.Mitos.Solver.optimum stats.Mitos.Solver.nodes_explored
      stats.Mitos.Solver.nodes_pruned
      (obj (Array.map float_of_int greedy))
  in
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "Tag population, e.g. 'network:2,file:1' (two network items, \
             one file item).")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Solve the static Problem 1 for a tag population: relaxed KKT vs \
          greedy vs exact branch-and-bound.")
    Term.(const run $ spec_arg $ tau_arg $ alpha_arg)

let asm_cmd =
  let run file policy_name tau alpha u_net u_export =
    protected @@ fun () ->
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, route_direct = or_die (resolve_policy policy_name params) in
    let source =
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let program =
      try Mitos_isa.Parser.parse source
      with Mitos_isa.Parser.Parse_error (line, msg) ->
        or_die (Error (Printf.sprintf "%s:%d: %s" file line msg))
    in
    (* standard harness resources: connection 1, file 1, process 1 *)
    let os = Mitos_system.Os.create ~seed:42 () in
    ignore (Mitos_system.Os.open_connection os);
    ignore (Mitos_system.Os.create_file os (String.make 64 'c'));
    ignore
      (Mitos_system.Os.spawn_process os
         ~base:Mitos_system.Layout.process_base ~size:4096);
    let machine =
      Mitos_isa.Machine.create ~mem_size:Mitos_system.Layout.mem_size
        ~syscall:(Mitos_system.Os.handler os) program
    in
    let engine =
      Engine.create
        ~config:(engine_config ~route_direct)
        ~policy
        ~source_tag:(Mitos_system.Os.source_tag os)
        program
    in
    Engine.attach engine machine;
    print_summary (Metrics.measure_run engine)
  in
  let file_pos0 =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Assembly source file.")
  in
  Cmd.v
    (Cmd.info "asm"
       ~doc:
         "Assemble and run a textual program under a policy. The harness \
          provides connection 1 (tainted stream), file 1 and process 1.")
    Term.(
      const run $ file_pos0 $ policy_arg $ tau_arg $ alpha_arg $ u_net_arg
      $ u_export_arg)

let litmus_cmd =
  let run policy_name tau alpha u_net u_export =
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let policy, _route = or_die (resolve_policy policy_name params) in
    let t =
      Mitos_util.Table.create
        ~header:[ "case"; "class"; "tainted?"; "description" ] ()
    in
    List.iter
      (fun (o : Litmus.outcome) ->
        Mitos_util.Table.add_row t
          [
            o.Litmus.case.Litmus.case_name;
            (match o.Litmus.case.Litmus.case_class with
            | Litmus.Direct -> "direct"
            | Litmus.Addr -> "addr-dep"
            | Litmus.Ctrl -> "ctrl-dep"
            | Litmus.Ijump -> "ijump");
            (if o.Litmus.tainted then "yes" else "no");
            o.Litmus.case.Litmus.description;
          ])
      (Litmus.run policy);
    Mitos_util.Table.print t
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Run the flow-class litmus suite under a policy: which kinds of \
          flows does it actually propagate?")
    Term.(
      const run $ policy_arg $ tau_arg $ alpha_arg $ u_net_arg $ u_export_arg)

let attack_cmd =
  let run jobs listen slo =
    protected @@ fun () ->
    with_jobs jobs (fun ~pool ->
        let tele =
          match listen with
          | None -> None
          | Some _ ->
            let p = telemetry_pilot ~pool ~slo () in
            let server = start_server ~listen (Tele.routes p.Tele.src) in
            p.Tele.replay ();
            Some server
        in
        Mitos_experiments.(Report.print (Table2.run ~pool ()));
        Option.iter finish_server tele)
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Run the Table II in-memory-attack comparison (all six shells).")
    Term.(const run $ jobs_arg $ listen_arg $ slo_arg)

let obs_bench_cmd =
  let run records repetitions =
    if records < 1 then or_die (Error "--records must be at least 1");
    if repetitions < 1 then or_die (Error "--repetitions must be at least 1");
    Mitos_experiments.(
      Report.print (Obs_overhead.run ~records ~repetitions ()))
  in
  let records_arg =
    Arg.(
      value
      & opt int 5_000
      & info [ "records" ] ~docv:"N" ~doc:"Replayed records per repetition.")
  in
  let repetitions_arg =
    Arg.(
      value
      & opt int 10
      & info [ "repetitions" ] ~docv:"K"
          ~doc:"Repetitions per mode (best wall time is reported).")
  in
  Cmd.v
    (Cmd.info "obs-bench"
       ~doc:
         "Measure observability overhead on the engine-replay benchmark: \
          un-instrumented baseline vs. the no-op sink vs. fully enabled \
          tracing+metrics.")
    Term.(const run $ records_arg $ repetitions_arg)

(* -- audit --------------------------------------------------------------- *)

module Audit = Mitos_obs.Audit
module Exp = Mitos_experiments

let audit_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit-out" ] ~docv:"FILE"
        ~doc:
          "Write the decision audit log as JSONL to $(docv) (one record \
           per line; byte-identical across runs and --jobs settings).")

let audit_capacity_arg =
  Arg.(
    value
    & opt int 65536
    & info [ "audit-capacity" ] ~docv:"N"
        ~doc:"Audit ring capacity in records (keep-oldest).")

let check_capacity capacity =
  if capacity < 1 then or_die (Error "--audit-capacity must be at least 1")

let write_audit_out audit = function
  | None -> ()
  | Some path ->
    (try
       Obs.write_file path (Audit.to_jsonl audit);
       Printf.printf "wrote audit log (%d records, %d dropped) to %s\n"
         (Audit.length audit) (Audit.dropped audit) path
     with Sys_error msg -> or_die (Error msg))

(* Run a workload live with the flight recorder threaded through the
   decision probe and the engine; obs (when requested) cross-links the
   records into the Chrome trace as instant events. *)
let audited_run ~capacity ~obs_opts name policy_name seed params =
  let policy, route_direct = or_die (resolve_policy policy_name params) in
  let built = or_die (build_workload name ~seed) in
  let audit = Audit.create ~capacity () in
  Mitos.Decision.set_audit (Some audit);
  let engine =
    Fun.protect
      ~finally:(fun () -> Mitos.Decision.set_audit None)
      (fun () ->
        W.Workload.run_live
          ~config:(engine_config ~route_direct)
          ?obs:obs_opts.obs ~sample_every:obs_opts.sample_every ~audit ~policy
          built)
  in
  (audit, engine)

let audit_log_cmd =
  let run name policy_name seed tau alpha u_net u_export capacity out obs_opts
      =
    protected @@ fun () ->
    check_capacity capacity;
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let audit, _engine =
      audited_run ~capacity ~obs_opts name policy_name seed params
    in
    (match out with
    | Some _ -> write_audit_out audit out
    | None -> print_string (Audit.to_jsonl audit));
    finish_obs obs_opts
  in
  Cmd.v
    (Cmd.info "log"
       ~doc:
         "Run a workload with the decision flight recorder on and dump \
          the audit log (JSONL): every Alg. 1/2 verdict with its Eq. (8) \
          submarginals, plus evictions. Writes to --audit-out, or stdout.")
    Term.(
      const run $ workload_arg $ policy_arg $ seed_arg $ tau_arg $ alpha_arg
      $ u_net_arg $ u_export_arg $ audit_capacity_arg $ audit_out_arg
      $ obs_term)

let audit_blame_cmd =
  let run target seed tau alpha u_net u_export capacity out jobs =
    protected @@ fun () ->
    check_capacity capacity;
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let summary =
      with_jobs jobs (fun ~pool ->
          match target with
          | "litmus" -> Exp.Blame.litmus ~capacity ~pool params
          | name ->
            (* validate the name before the expensive runs *)
            ignore (or_die (build_workload name ~seed));
            Exp.Blame.workload ~capacity ~pool ~name params (fun () ->
                or_die (build_workload name ~seed)))
    in
    Exp.Report.print
      (Exp.Blame.report
         ~title:(Printf.sprintf "Blame attribution (%s, mitos policy)" target)
         summary);
    write_audit_out summary.Exp.Blame.audit out
  in
  let target_arg =
    Arg.(
      value
      & pos 0 string "litmus"
      & info [] ~docv:"TARGET"
          ~doc:"'litmus' (the flow-class suite) or a workload name.")
  in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Attribute every over-/under-tainted byte (vs. the faros and \
          propagate-all oracle bounds) to the audit records that caused \
          it, ranked per tag and per pc.")
    Term.(
      const run $ target_arg $ seed_arg $ tau_arg $ alpha_arg $ u_net_arg
      $ u_export_arg $ audit_capacity_arg $ audit_out_arg $ jobs_arg)

let audit_graph_cmd =
  let run name policy_name seed tau alpha u_net u_export capacity out dot_out
      json_out =
    protected @@ fun () ->
    check_capacity capacity;
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let audit, engine =
      audited_run ~capacity
        ~obs_opts:
          { trace_out = None; metrics_out = None; sample_every = 1024;
            obs = None }
        name policy_name seed params
    in
    let graph =
      Exp.Flowgraph.build ~shadow:(Engine.shadow engine) (Audit.records audit)
    in
    let write what path contents =
      try
        Obs.write_file path contents;
        Printf.printf "wrote %s to %s\n" what path
      with Sys_error msg -> or_die (Error msg)
    in
    Option.iter
      (fun path -> write "flow graph (DOT)" path (Exp.Flowgraph.to_dot graph))
      dot_out;
    Option.iter
      (fun path -> write "flow graph (JSON)" path (Exp.Flowgraph.to_json graph))
      json_out;
    if dot_out = None && json_out = None then
      print_string (Exp.Flowgraph.to_dot graph);
    write_audit_out audit out
  in
  let dot_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot-out" ] ~docv:"FILE" ~doc:"Write Graphviz DOT to $(docv).")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Write graph JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Run a workload audited and export the taint propagation graph \
          (tag and decision-site nodes, verdict and eviction edges) as \
          DOT and/or JSON. With neither output flag, DOT goes to stdout.")
    Term.(
      const run $ workload_arg $ policy_arg $ seed_arg $ tau_arg $ alpha_arg
      $ u_net_arg $ u_export_arg $ audit_capacity_arg $ audit_out_arg
      $ dot_out_arg $ json_out_arg)

let audit_cmd =
  Cmd.group
    (Cmd.info "audit"
       ~doc:
         "Decision flight recorder: dump the per-decision audit log, \
          attribute over-/under-tainting to decisions (blame), or export \
          the taint flow graph.")
    [ audit_log_cmd; audit_blame_cmd; audit_graph_cmd ]

(* -- serve / watch ------------------------------------------------------- *)

let serve_cmd =
  let run name seed tau alpha u_net u_export slo window sample_every listen
      oneshot jobs =
    protected @@ fun () ->
    if sample_every < 1 then or_die (Error "--sample-every must be at least 1");
    if window < 0.0 then or_die (Error "--window must be non-negative");
    if listen = None && oneshot = None then
      or_die (Error "nothing to do: pass --listen HOST:PORT and/or --oneshot DIR");
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    with_jobs jobs (fun ~pool ->
        let p =
          Tele.pilot ~params ~rules:(parse_rules slo) ~window ~sample_every
            ~pool
            ~build:(fun () -> or_die (build_workload name ~seed))
            ()
        in
        let routes = Tele.routes p.Tele.src in
        let server = start_server ~listen routes in
        p.Tele.replay ();
        let progress = Engine.progress p.Tele.engine in
        Printf.printf
          "pilot replay done: %d records, %d IFP decisions, over-taint bound \
           %.0f bytes, health %s\n"
          progress.Engine.prog_step
          (progress.Engine.prog_ifp_propagated
          + progress.Engine.prog_ifp_blocked)
          p.Tele.over_taint_bound
          (match p.Tele.src.Tele.health with
          | Some h when not (Mitos_obs.Health.healthy h) -> "BREACH"
          | _ -> "ok");
        (match oneshot with
        | None -> ()
        | Some dir ->
          List.iter
            (fun (_file, path) -> Printf.printf "wrote %s\n" path)
            (Server.oneshot ~dir routes));
        finish_server server)
  in
  let workload_opt_arg =
    Arg.(
      value
      & pos 0 string "netbench"
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload to pilot (default netbench; see `mitos-cli list').")
  in
  let window_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "window" ] ~docv:"STEPS"
          ~doc:
            "Health evaluation window in machine steps: 0 judges the \
             latest sample, a positive window judges the trailing mean.")
  in
  let oneshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "oneshot" ] ~docv:"DIR"
          ~doc:
            "Write every endpoint payload once to $(docv) \
             (metrics.prom, healthz.txt, snapshot.json, tracez.jsonl, \
             auditz.jsonl) — the deterministic offline twin of the live \
             endpoints; byte-identical across --jobs settings.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the telemetry pilot (record a workload, sweep the oracle \
          policy panel, replay audited under MITOS) and expose the full \
          telemetry surface — live via --listen, and/or as files via \
          --oneshot.")
    Term.(
      const run $ workload_opt_arg $ seed_arg $ tau_arg $ alpha_arg
      $ u_net_arg $ u_export_arg $ slo_arg $ window_arg $ sample_every_arg
      $ listen_arg $ oneshot_arg $ jobs_arg)

let watch_cmd =
  let run urls interval count timeout burn_slo =
    protected @@ fun () ->
    if count < 1 then or_die (Error "--count must be at least 1");
    if interval < 0.0 then or_die (Error "--interval must be non-negative");
    if timeout <= 0.0 then or_die (Error "--timeout must be positive");
    let targets =
      List.map
        (fun url ->
          let host, port, path = or_die (Server.parse_url url) in
          (host, port, if path = "/" then "/healthz" else path))
        urls
    in
    (* per-target verdict of the *last* poll: 0 ok / 1 breach /
       2 unreachable; the exit code is the worst across targets, so
       one watch invocation judges a whole fleet. With --burn-slo the
       probe body's firing lines escalate a breach: a page-severity
       alert exits 2 like an outage, a ticket stays 1. *)
    let page_verdict body =
      Mitos_obs.Fleet.parse_firing body
      |> List.exists (fun (_, sev) -> sev = Alerts.Page)
    in
    let verdicts = Array.make (List.length targets) 2 in
    for i = 1 to count do
      List.iteri
        (fun j (host, port, path) ->
          match Server.fetch ~timeout ~host ~port ~path () with
          | Error msg ->
            verdicts.(j) <- 2;
            Printf.printf "%s:%d%s unreachable: %s\n%!" host port path msg
          | Ok (status, body) ->
            verdicts.(j) <-
              (if status = 200 then 0
               else if burn_slo && page_verdict body then 2
               else 1);
            let first_line =
              match String.index_opt body '\n' with
              | Some nl -> String.sub body 0 nl
              | None -> body
            in
            Printf.printf "%s:%d%s %d %s\n%!" host port path status first_line)
        targets;
      if i < count then ignore (Unix.sleepf interval)
    done;
    match Array.fold_left max 0 verdicts with
    | 0 -> ()
    | worst -> exit worst
  in
  let urls_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"URL"
          ~doc:
            "Telemetry addresses, e.g. http://127.0.0.1:9100 (path defaults \
             to /healthz). With several URLs, every target is polled each \
             round and the exit code is the worst verdict across them.")
  in
  let interval_arg =
    Arg.(
      value
      & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Delay between polls.")
  in
  let count_arg =
    Arg.(
      value
      & opt int 1
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of polls (default 1).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float Mitos_obs.Netio.default_timeout
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-poll socket timeout (connect and read).")
  in
  let watch_burn_arg =
    Arg.(
      value
      & flag
      & info [ "burn-slo" ]
          ~doc:
            "Grade breaches by burn-rate alert severity: when a non-200 \
             probe body carries a page-severity firing line (a server \
             running --burn-slo rules), exit 2 instead of 1 — so pager \
             wiring can treat a fast-burn alert like an outage.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Poll one or more serving mitos processes: one status line per \
          target per poll. Exit 0 when every target's last poll returned \
          200, 1 when the worst target showed an SLO breach (non-200), 2 \
          when any target was unreachable or a URL was malformed (or, \
          with --burn-slo, reported a page-severity alert firing).")
    Term.(
      const run $ urls_arg $ interval_arg $ count_arg $ timeout_arg
      $ watch_burn_arg)

(* -- alerts -------------------------------------------------------------- *)

let alerts_cmd =
  let run url incidents timeout =
    protected @@ fun () ->
    if timeout <= 0.0 then or_die (Error "--timeout must be positive");
    let host, port, path = or_die (Server.parse_url url) in
    let path =
      if path <> "/" then path else if incidents then "/alertz" else "/alerts"
    in
    match Server.fetch ~timeout ~host ~port ~path () with
    | Error msg ->
      or_die (Error (Printf.sprintf "%s:%d%s %s" host port path msg))
    | Ok (status, body) ->
      print_string body;
      if body <> "" && body.[String.length body - 1] <> '\n' then
        print_newline ();
      if status <> 200 then exit 2;
      (* the /alerts body carries its own severity rollup; grading on
         the canonical substring keeps the CLI JSON-parser-free *)
      let contains needle =
        let n = String.length needle and h = String.length body in
        let rec go i =
          i + n <= h && (String.sub body i n = needle || go (i + 1))
        in
        go 0
      in
      if contains "\"worst\":\"page\"" then exit 2
      else if contains "\"worst\":\"ticket\"" then exit 1
  in
  let url_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"URL"
          ~doc:
            "Telemetry address of a process serving burn-rate alerts \
             (serve-decisions/fleet with --burn-slo and --listen), e.g. \
             http://127.0.0.1:9100. A URL path overrides the default \
             endpoint choice.")
  in
  let incidents_arg =
    Arg.(
      value
      & flag
      & info [ "incidents" ]
          ~doc:
            "Fetch /alertz (the incident-timeline JSONL ring) instead of \
             the /alerts state JSON.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float Mitos_obs.Netio.default_timeout
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket timeout (connect and read).")
  in
  Cmd.v
    (Cmd.info "alerts"
       ~doc:
         "Fetch a serving process's burn-rate alert state (/alerts JSON, \
          or the incident JSONL ring with --incidents) and print it. Exit \
          0 when nothing is firing, 1 when the worst firing alert is \
          ticket severity, 2 when a page is firing or the fetch failed.")
    Term.(const run $ url_arg $ incidents_arg $ timeout_arg)

(* -- decision service ---------------------------------------------------- *)

module Net = Mitos_net

let parse_endpoint s = or_die (Net.Transport.endpoint_of_string s)

let endpoint_arg ~default ~doc =
  Arg.(
    value
    & opt string default
    & info [ "endpoint"; "e" ] ~docv:"ENDPOINT" ~doc)

let net_workers_arg =
  Arg.(
    value
    & opt int Net.Server.default_config.Net.Server.workers
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains serving connections (0 = on the acceptor).")

let net_nodes_arg =
  Arg.(
    value
    & opt int Net.Server.default_config.Net.Server.nodes
    & info [ "nodes" ] ~docv:"N"
        ~doc:"Estimator slots (max cluster nodes the service accepts).")

let read_timeout_arg =
  Arg.(
    value
    & opt float Net.Server.default_config.Net.Server.read_timeout
    & info [ "read-timeout" ] ~docv:"SECONDS"
        ~doc:"Per-connection read timeout; idle connections are dropped.")

let shards_arg ~default ~doc =
  Arg.(value & opt int default & info [ "shards" ] ~docv:"N" ~doc)

let estimator_shards_arg ~default =
  shards_arg ~default
    ~doc:
      "Estimator shards: per-node pollution contributions are split \
       across N independently locked slot ranges (1 = the legacy single \
       lock). The folded global is deterministic for a fixed N."

(* serve-decisions and coordinator are one implementation: the
   coordinator *is* a decision server whose estimator the cluster
   nodes publish into. *)
let run_decision_server endpoint workers nodes shards read_timeout tau alpha
    u_net u_export listen slo burn_slo node_id telemetry =
  protected @@ fun () ->
  if nodes < 1 then or_die (Error "--nodes must be at least 1");
  if workers < 0 then or_die (Error "--workers must be non-negative");
  if shards < 1 then or_die (Error "--shards must be at least 1");
  if node_id = "" then or_die (Error "--node-id must be non-empty");
  let params = make_params ~tau ~alpha ~u_net ~u_export in
  let config =
    { Net.Server.default_config with
      workers; nodes; read_timeout; estimator_shards = shards; node_id }
  in
  (* The service shares one real-clock obs context with its telemetry
     surface: server spans (stamped with client trace contexts) land
     in its tracer, request metrics in its registry. *)
  let obs = Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) () in
  let registry = Obs.registry obs in
  let service = Net.Server.create ~config ~registry ~obs ~params () in
  let listener = Net.Server.start service (parse_endpoint endpoint) in
  Printf.printf "decision service on %s (%d workers, %d estimator slots)\n%!"
    (Net.Transport.endpoint_to_string (Net.Server.endpoint listener))
    workers nodes;
  let health =
    Health.create ~window:0.0 ~rules:(parse_rules slo) ()
  in
  let alerts = make_alerts ~obs burn_slo in
  let src = Tele.source ~health ?alerts obs in
  (* The health watchdog and alert engine are observed by the linger
     tick on this domain and (with --telemetry) read by worker domains
     answering Query_telemetry; one mutex covers both. *)
  let health_mu = Mutex.create () in
  let with_health f =
    Mutex.lock health_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock health_mu) f
  in
  if telemetry then begin
    Net.Server.set_health_probe service (fun () ->
        with_health (fun () -> Tele.health_verdict src));
    Printf.printf
      "wire telemetry on: Query_telemetry serves node %s's health and \
       registry snapshot\n%!"
      node_id
  end;
  let http =
    start_server ~listen (Tele.routes ~pid:(Unix.getpid ()) src)
  in
  (match http with
  | Some _ -> ()
  | None -> print_endline "serving; interrupt (Ctrl-C or SIGTERM) to exit");
  (* once a second: GC + lock gauges into /metrics, contention-share
     signals into /healthz, and (with --burn-slo) the same signals
     plus the request counter and its derived rate into the alert
     store before re-judging the burn-rate rules *)
  let requests_total () =
    List.fold_left
      (fun acc (r : Mitos_obs.Registry.Snapshot.row) ->
        match r.Mitos_obs.Registry.Snapshot.value with
        | Mitos_obs.Registry.Snapshot.Counter c
          when r.Mitos_obs.Registry.Snapshot.name = "mitos_net_requests_total"
          ->
          acc + c
        | _ -> acc)
      0
      (Mitos_obs.Registry.snapshot registry)
  in
  let observations = ref 0 in
  let tick () =
    Mitos_obs.Runtime.sample registry;
    incr observations;
    let at = float_of_int !observations in
    let signals = Mitos_obs.Runtime.signals () in
    with_health (fun () ->
        Health.observe health ~at signals;
        match alerts with
        | None -> ()
        | Some a ->
          let db = Alerts.tsdb a in
          Tsdb.observe db ~at signals;
          Tsdb.add db "net_requests_total" ~at (float_of_int (requests_total ()));
          Tsdb.add db "net_request_rate" ~at
            (Tsdb.rate db "net_requests_total" ~at ~window:15.0);
          Alerts.eval a ~at)
  in
  linger ~tick ();
  Option.iter Server.stop http;
  Net.Server.stop listener

let node_id_arg =
  Arg.(
    value
    & opt string Net.Server.default_config.Net.Server.node_id
    & info [ "node-id" ] ~docv:"ID"
        ~doc:
          "The id this node reports in telemetry replies — the node label \
           of its series in a federated /metrics. Give each fleet member a \
           distinct id.")

let telemetry_flag_arg =
  Arg.(
    value
    & flag
    & info [ "telemetry" ]
        ~doc:
          "Answer wire Query_telemetry requests with this node's live SLO \
           verdict (instead of the default always-healthy probe), so a \
           `mitos-cli fleet' aggregator rolls this node's /healthz into \
           the fleet verdict.")

let decision_server_term =
  Term.(
    const run_decision_server
    $ endpoint_arg ~default:"tcp://127.0.0.1:9900"
        ~doc:
          "Endpoint to serve: tcp://HOST:PORT (port 0 picks a free port), \
           unix://PATH or mem://NAME."
    $ net_workers_arg $ net_nodes_arg
    $ estimator_shards_arg
        ~default:Net.Server.default_config.Net.Server.estimator_shards
    $ read_timeout_arg $ tau_arg
    $ alpha_arg $ u_net_arg $ u_export_arg $ listen_arg $ slo_arg
    $ burn_slo_arg $ node_id_arg $ telemetry_flag_arg)

let serve_decisions_cmd =
  Cmd.v
    (Cmd.info "serve-decisions"
       ~doc:
         "Serve the MITOS decision protocol: batched indirect-flow \
          decisions under the given parameters, plus the shared pollution \
          estimator. --listen additionally exposes /metrics (request \
          counters and latency percentiles) over HTTP. Runs until \
          interrupted.")
    decision_server_term

let coordinator_cmd =
  Cmd.v
    (Cmd.info "coordinator"
       ~doc:
         "Host the cluster coordinator: the decision server whose \
          estimator holds every node's published pollution (the paper's \
          globally available scalar, over the wire). Point `mitos-cli \
          node' processes at this endpoint.")
    decision_server_term

(* -- fleet --------------------------------------------------------------- *)

module Fleet = Mitos_obs.Fleet

(* One persistent wire client per endpoint; a failed roundtrip drops
   the cached client so the next scrape reconnects from scratch
   instead of reusing a dead connection. *)
let fleet_fetcher ~timeout endpoint_str =
  let endpoint = parse_endpoint endpoint_str in
  let cell = ref None in
  let fetch () =
    let client =
      match !cell with
      | Some c -> Ok c
      | None -> (
        match Net.Client.connect ~timeout ~retries:0 endpoint with
        | Ok c ->
          cell := Some c;
          Ok c
        | Error e -> Error e)
    in
    match client with
    | Error e -> Error (Net.Client.error_to_string e)
    | Ok c -> (
      match Net.Client.telemetry c with
      | Ok r ->
        Ok
          {
            Fleet.node = r.Net.Wire.node;
            healthy = r.Net.Wire.healthy;
            health = r.Net.Wire.health;
            snapshot = r.Net.Wire.snapshot;
          }
      | Error e ->
        Net.Client.close c;
        cell := None;
        Error (Net.Client.error_to_string e))
  in
  (endpoint_str, fetch)

let fleet_cell v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v

let render_fleet_table fleet =
  let b = Buffer.create 512 in
  let row name verdict rate p99_ms occupancy requests =
    Buffer.add_string b
      (Printf.sprintf "%-24s %-12s %9s %9s %10s %10s\n" name verdict rate
         p99_ms occupancy requests)
  in
  row "node" "health" "req/s" "p99-ms" "occupancy" "requests";
  let views = Fleet.nodes fleet in
  List.iter
    (fun (v : Fleet.node_view) ->
      let verdict =
        if not v.up then "unreachable"
        else if v.stale then "stale"
        else if not v.node_healthy then "breach"
        else "ok"
      in
      row v.node_id verdict
        (fleet_cell v.request_rate)
        (fleet_cell (v.decide_p99_ns /. 1e6))
        (fleet_cell v.occupancy)
        (string_of_int v.node_requests_total))
    views;
  let signals = Fleet.signals fleet in
  let signal name =
    match List.assoc_opt name signals with Some v -> v | None -> Float.nan
  in
  let sum f =
    List.fold_left
      (fun acc v -> if Float.is_nan (f v) then acc else acc +. f v)
      0.0 views
  in
  let up = signal "fleet_up" and total = signal "fleet_nodes" in
  let merged_name =
    if Float.is_nan up then "fleet"
    else Printf.sprintf "fleet (%.0f/%.0f up)" up total
  in
  row merged_name
    (if Fleet.healthy fleet then "ok" else "breach")
    (fleet_cell (sum (fun (v : Fleet.node_view) -> v.request_rate)))
    (fleet_cell (signal "fleet_decision_p99_ns" /. 1e6))
    (fleet_cell (sum (fun (v : Fleet.node_view) -> v.occupancy)))
    (let r = signal "fleet_requests_total" in
     if Float.is_nan r then "-" else Printf.sprintf "%.0f" r);
  Buffer.contents b

let fleet_cmd =
  let run endpoints interval_opt count timeout listen slo burn_slo stale_after
      =
    protected @@ fun () ->
    if timeout <= 0.0 then or_die (Error "--timeout must be positive");
    if stale_after <= 0.0 then or_die (Error "--stale-after must be positive");
    if count < 0 then or_die (Error "--count must be non-negative");
    (match interval_opt with
    | Some i when i <= 0.0 -> or_die (Error "--interval must be positive")
    | _ -> ());
    let rules =
      Fleet.default_rules
      @ List.map (fun s -> or_die (Health.parse_rule s)) slo
    in
    let health = Health.create ~window:0.0 ~rules () in
    (* fleet-level burn-rate rules judge the *fleet* signals
       (fleet_unreachable, fleet_decision_p99_ns, ...) scraped every
       round; per-node alerts travel in each node's health body *)
    let alerts =
      match burn_slo with
      | [] -> None
      | specs -> Some (Alerts.create ~rules:(parse_burn_rules specs) ())
    in
    let fleet =
      try
        Fleet.create ~stale_after ~health ?alerts
          (List.map (fleet_fetcher ~timeout) endpoints)
      with Invalid_argument msg -> or_die (Error msg)
    in
    let scrape_and_print () =
      Fleet.scrape fleet ~at:(Unix.gettimeofday ());
      print_string (render_fleet_table fleet);
      flush stdout
    in
    let live = listen <> None || interval_opt <> None in
    if not live then begin
      (* one-shot: scrape, print the table, exit with the verdict *)
      scrape_and_print ();
      if not (Fleet.healthy fleet) then exit 1
    end
    else begin
      let interval = Option.value interval_opt ~default:2.0 in
      let http = start_server ~listen (Fleet.routes fleet) in
      install_shutdown_handlers ();
      let rounds = ref 0 in
      let continue () =
        (not (Atomic.get shutdown_requested)) && (count = 0 || !rounds < count)
      in
      while continue () do
        if !rounds > 0 then print_newline ();
        Printf.printf "-- scrape %d --\n" (!rounds + 1);
        scrape_and_print ();
        incr rounds;
        if continue () then begin
          let slept = ref 0.0 in
          while !slept < interval && not (Atomic.get shutdown_requested) do
            (try Unix.sleepf 0.2 with Unix.Unix_error (EINTR, _, _) -> ());
            slept := !slept +. 0.2
          done
        end
      done;
      Option.iter Server.stop http;
      if count > 0 && not (Fleet.healthy fleet) then exit 1
    end
  in
  let endpoints_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"ENDPOINT"
          ~doc:
            "Decision-service endpoints to federate (tcp://HOST:PORT, \
             unix://PATH or mem://NAME) — each serving wire telemetry \
             (serve-decisions --telemetry).")
  in
  let interval_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:
            "Live mode: re-scrape and re-print the fleet table every \
             $(docv) (default one-shot).")
  in
  let count_arg =
    Arg.(
      value
      & opt int 0
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:
            "In live mode, stop after $(docv) scrapes (0 = until \
             interrupted) and exit with the last verdict.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float Mitos_obs.Netio.default_timeout
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-node connect/roundtrip timeout.")
  in
  let fleet_listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Serve the federated surfaces on $(docv) while scraping: GET \
             /metrics (every node's series labelled node=\"<id>\" plus \
             fleet meta-series), /fleet.json (per-node + merged rollup), \
             /healthz (worst-of-fleet verdict; 503 names the breaching \
             node). Implies live mode.")
  in
  let stale_after_arg =
    Arg.(
      value
      & opt float 60.0
      & info [ "stale-after" ] ~docv:"SECONDS"
          ~doc:
            "Drop a node from the merged rollup (and breach the fleet \
             verdict) when its last successful scrape is older than \
             $(docv).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Federate telemetry across a fleet of decision servers: scrape \
          each endpoint's registry snapshot over the wire protocol, merge \
          exactly (counters sum, histograms merge bucket-wise so fleet \
          p99 comes from merged buckets, gauges stay per-node), and print \
          a live per-node table with a merged fleet row. Exit 0 when the \
          fleet is healthy, 1 otherwise (one-shot and --count modes).")
    Term.(
      const run $ endpoints_arg $ interval_arg $ count_arg $ timeout_arg
      $ fleet_listen_arg $ slo_arg $ burn_slo_arg $ stale_after_arg)

let sync_period_arg =
  Arg.(
    value
    & opt int 64
    & info [ "sync-period" ] ~docv:"STEPS"
        ~doc:"Engine steps between pollution publishes.")

let node_cmd =
  let run endpoint workload seed sync_period index tau alpha u_net u_export =
    protected @@ fun () ->
    if index < 0 then or_die (Error "--index must be non-negative");
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let built = or_die (build_workload workload ~seed) in
    let cluster =
      Net.Netcluster.create ~index_base:index ~params ~sync_period
        ~endpoint:(parse_endpoint endpoint) [ built ]
    in
    let rounds = Net.Netcluster.run cluster in
    print_string
      (Net.Netcluster.render (Net.Netcluster.report_of_net ~rounds cluster));
    Net.Netcluster.close cluster
  in
  let index_arg =
    Arg.(
      value
      & opt int 0
      & info [ "index" ] ~docv:"I"
          ~doc:
            "This node's estimator slot at the coordinator (each process \
             needs its own).")
  in
  Cmd.v
    (Cmd.info "node"
       ~doc:
         "Run one cluster node: execute WORKLOAD under a MITOS policy \
          whose global pollution is read from the coordinator, publishing \
          the local contribution every --sync-period steps.")
    Term.(
      const run
      $ endpoint_arg ~default:"tcp://127.0.0.1:9900"
          ~doc:"Coordinator endpoint."
      $ workload_arg $ seed_arg $ sync_period_arg $ index_arg $ tau_arg
      $ alpha_arg $ u_net_arg $ u_export_arg)

let cluster_cmd =
  let run transport nodes shards sync_period seed workload jobs tau alpha
      u_net u_export report_out =
    protected @@ fun () ->
    if nodes < 1 then or_die (Error "--nodes must be at least 1");
    if shards < 1 then or_die (Error "--shards must be at least 1");
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    let entry =
      match W.Registry.find workload with
      | entry -> entry
      | exception Not_found ->
        or_die
          (Error
             (Printf.sprintf "unknown workload %S; run `mitos-cli list'"
                workload))
    in
    with_jobs jobs (fun ~pool ->
        let builts =
          Pool.map pool
            ~f:(fun i -> entry.W.Registry.build ~seed:(seed + i))
            (List.init nodes Fun.id)
        in
        let net_report ~endpoint builts =
          let cluster =
            Net.Netcluster.create ~params ~sync_period ~endpoint builts
          in
          Fun.protect
            ~finally:(fun () -> Net.Netcluster.close cluster)
            (fun () ->
              let rounds = Net.Netcluster.run cluster in
              Net.Netcluster.report_of_net ~rounds cluster)
        in
        let report =
          match transport with
          | "inprocess" ->
            let cluster =
              Mitos_distrib.Cluster.create ~shards ~params ~sync_period
                builts
            in
            let rounds = Mitos_distrib.Cluster.run cluster in
            Net.Netcluster.report_of_cluster ~rounds cluster
          | "loopback" ->
            (* same shard count as inprocess, so the two transports
               fold the estimator identically and the byte-diff holds
               at any --shards *)
            let service =
              Net.Server.create
                ~config:
                  { Net.Server.default_config with
                    nodes; workers = 0; estimator_shards = shards }
                ~params ()
            in
            let name = Printf.sprintf "cluster-%d" (Unix.getpid ()) in
            let listener =
              Net.Server.start service (Net.Transport.Memory name)
            in
            Fun.protect
              ~finally:(fun () -> Net.Server.stop listener)
              (fun () ->
                net_report ~endpoint:(Net.Transport.Memory name) builts)
          | other -> net_report ~endpoint:(parse_endpoint other) builts
        in
        let text = Net.Netcluster.render report in
        print_string text;
        match report_out with
        | None -> ()
        | Some path ->
          Obs.write_file path text;
          Printf.printf "wrote report to %s\n" path)
  in
  let transport_arg =
    Arg.(
      value
      & opt string "inprocess"
      & info [ "transport" ] ~docv:"T"
          ~doc:
            "Where the pollution estimator lives: 'inprocess' (shared \
             array, the Distrib.Cluster path), 'loopback' (a decision \
             server over the in-memory transport — byte-identical report \
             to inprocess at any --jobs), or a coordinator ENDPOINT \
             (tcp://HOST:PORT).")
  in
  let nodes_arg =
    Arg.(
      value
      & opt int 3
      & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let workload_opt_arg =
    Arg.(
      value
      & opt string "netbench"
      & info [ "workload"; "w" ] ~docv:"WORKLOAD"
          ~doc:"Workload each node runs (node i uses --seed + i).")
  in
  let report_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report-out" ] ~docv:"FILE"
          ~doc:
            "Also write the deterministic report to $(docv) — what the CI \
             cluster-diff job byte-compares across transports and --jobs.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run a multi-node MITOS cluster to completion and print its \
          deterministic report. The same deployment can run against the \
          in-process estimator, a loopback decision server (byte-identical \
          by construction) or a live coordinator.")
    Term.(
      const run $ transport_arg $ nodes_arg $ estimator_shards_arg ~default:1
      $ sync_period_arg $ seed_arg
      $ workload_opt_arg $ jobs_arg $ tau_arg $ alpha_arg $ u_net_arg
      $ u_export_arg $ report_out_arg)

let loadgen_cmd =
  let run endpoint requests batch candidates space publish_every node seed
      timeout bench_out propagation open_rate pareto_alpha diurnal_amp
      diurnal_period =
    protected @@ fun () ->
    let open_loop =
      match open_rate with
      | None -> None
      | Some rate_rps ->
        Some
          {
            Net.Loadgen.rate_rps;
            pareto_alpha;
            diurnal_amp;
            diurnal_period_s = diurnal_period;
          }
    in
    let config =
      {
        Net.Loadgen.requests;
        batch;
        candidates;
        space;
        publish_every;
        node;
        seed;
        propagation;
        open_loop;
      }
    in
    let obs =
      if propagation then Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) ()
      else Obs.disabled
    in
    match
      Net.Loadgen.run ~config ~client_timeout:timeout ~obs
        (parse_endpoint endpoint)
    with
    | Error err -> or_die (Error (Net.Client.error_to_string err))
    | Ok report ->
      print_string (Net.Loadgen.render report);
      (match bench_out with
      | None -> ()
      | Some path ->
        Net.Loadgen.merge_into_bench_json ~path ~jobs:1 report;
        Printf.printf "merged net_decide_batch into %s\n" path)
  in
  let d = Net.Loadgen.default_config in
  let requests_arg =
    Arg.(
      value
      & opt int d.Net.Loadgen.requests
      & info [ "requests" ] ~docv:"N" ~doc:"Request frames to issue.")
  in
  let batch_arg =
    Arg.(
      value
      & opt int d.Net.Loadgen.batch
      & info [ "batch" ] ~docv:"N" ~doc:"Decide requests per frame.")
  in
  let candidates_arg =
    Arg.(
      value
      & opt int d.Net.Loadgen.candidates
      & info [ "candidates" ] ~docv:"N"
          ~doc:"Max candidate tags per decide request.")
  in
  let space_arg =
    Arg.(
      value
      & opt int d.Net.Loadgen.space
      & info [ "space" ] ~docv:"N"
          ~doc:"Max free provenance slots per decide request.")
  in
  let publish_every_arg =
    Arg.(
      value
      & opt int d.Net.Loadgen.publish_every
      & info [ "publish-every" ] ~docv:"N"
          ~doc:"One pollution publish per N frames (0 = never).")
  in
  let node_arg =
    Arg.(
      value
      & opt int d.Net.Loadgen.node
      & info [ "node" ] ~docv:"I" ~doc:"Estimator slot the publishes target.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float Mitos_obs.Netio.default_timeout
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Client socket timeout.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Merge a net_decide_batch row (p50/p95/p99 ns, requests/s) \
             into the BENCH_decisions.json at $(docv) for `bench compare'.")
  in
  let propagate_arg =
    Arg.(
      value & flag
      & info [ "propagate" ]
          ~doc:
            "Stamp every request with a W3C-style trace context (one \
             trace id per roundtrip, minted from the seed) so server \
             spans stitch to this client in /tracez; the report then \
             prints a sample trace id to query.")
  in
  let d_ol = Net.Loadgen.default_open_loop in
  let open_rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "open-loop" ] ~docv:"RPS"
          ~doc:
            "Issue on a seeded open-loop arrival schedule at a mean of \
             $(docv) frames/s (heavy-tail Pareto inter-arrivals, optional \
             diurnal ramp) instead of back-to-back; the report gains \
             offered-rate and max-lag lines.")
  in
  let pareto_alpha_arg =
    Arg.(
      value
      & opt float d_ol.Net.Loadgen.pareto_alpha
      & info [ "pareto-alpha" ] ~docv:"A"
          ~doc:"Open-loop inter-arrival tail shape (> 1; smaller = burstier).")
  in
  let diurnal_amp_arg =
    Arg.(
      value
      & opt float d_ol.Net.Loadgen.diurnal_amp
      & info [ "diurnal-amp" ] ~docv:"F"
          ~doc:
            "Open-loop diurnal swing: the offered rate ramps between \
             (1 +/- $(docv)) of the mean over each period.")
  in
  let diurnal_period_arg =
    Arg.(
      value
      & opt float d_ol.Net.Loadgen.diurnal_period_s
      & info [ "diurnal-period" ] ~docv:"SECONDS"
          ~doc:"Open-loop diurnal cycle length.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Generate a seeded synthetic decision-request mix against a \
          running decision service and report client-observed throughput \
          and latency percentiles.")
    Term.(
      const run
      $ endpoint_arg ~default:"tcp://127.0.0.1:9900"
          ~doc:"Decision-service endpoint to load."
      $ requests_arg $ batch_arg $ candidates_arg $ space_arg
      $ publish_every_arg $ node_arg $ seed_arg $ timeout_arg $ bench_out_arg
      $ propagate_arg $ open_rate_arg $ pareto_alpha_arg $ diurnal_amp_arg
      $ diurnal_period_arg)

(* -- profile ------------------------------------------------------------- *)

let profile_cmd =
  let run requests batch workers nodes shards seed tau alpha u_net u_export
      out top_n =
    protected @@ fun () ->
    if shards < 1 then or_die (Error "--shards must be at least 1");
    let params = make_params ~tau ~alpha ~u_net ~u_export in
    (* A self-contained profiling run: a decision service on a real
       TCP socket (so frame codec, socket reads and worker handoff are
       all on the profile) loaded by the seeded generator with trace
       propagation on. Both sides run on the real clock; their tracers
       are folded into one collapsed-stack file under synthetic
       "client"/"server" roots, with the instrumented-mutex totals
       appended as "locks;NAME;wait|hold" rows. *)
    let module Profile = Mitos_obs.Profile in
    let module Contended = Mitos_obs.Contended in
    let server_obs = Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) () in
    let service =
      Net.Server.create
        ~config:
          { Net.Server.default_config with
            workers; nodes; estimator_shards = shards }
        ~registry:(Obs.registry server_obs) ~obs:server_obs ~params ()
    in
    let listener =
      Net.Server.start service
        (Net.Transport.Tcp { host = "127.0.0.1"; port = 0 })
    in
    let client_obs = Obs.create ~clock:(Mitos_obs.Obs_clock.real ()) () in
    let config =
      {
        Net.Loadgen.default_config with
        requests;
        batch;
        seed;
        propagation = true;
      }
    in
    let result =
      Fun.protect
        ~finally:(fun () -> Net.Server.stop listener)
        (fun () ->
          Net.Loadgen.run ~config ~obs:client_obs
            (Net.Server.endpoint listener))
    in
    let report =
      match result with
      | Error err -> or_die (Error (Net.Client.error_to_string err))
      | Ok report -> report
    in
    (* Tracer ticks are µs on the real clock; the export is in ns so
       span rows and lock rows share one unit. Lock totals are already
       ns — rendered unscaled. *)
    let scale = 1000 in
    let span_rows =
      Profile.fold ~root:"client" (Obs.tracer client_obs)
      @ Profile.fold ~root:"server" (Obs.tracer server_obs)
    in
    let lock_rows =
      List.concat_map
        (fun (name, (st : Contended.stats)) ->
          [
            {
              Profile.stack = [ "locks"; name; "wait" ];
              self = st.Contended.wait_ns_total;
              total = st.Contended.wait_ns_total;
              count = st.Contended.contended;
            };
            {
              Profile.stack = [ "locks"; name; "hold" ];
              self = st.Contended.hold_ns_total;
              total = st.Contended.hold_ns_total;
              count = st.Contended.acquisitions;
            };
          ])
        (Contended.aggregate ())
    in
    let folded =
      Profile.render_rows ~scale span_rows ^ Profile.render_rows lock_rows
    in
    Obs.write_file out folded;
    (* the estimator's shard locks must be on the profile: the loadgen
       publish stream acquires them, so their absence means the
       sharded estimator lost its instrumentation. Asserted on the row
       list, not the rendered file — a lock held for under a clock
       tick renders with weight 0 and is elided from the folded
       output, but its acquisition count is exact. *)
    let is_shard_lock (r : Profile.row) =
      match r.Profile.stack with
      | [ "locks"; name; _ ] ->
        String.length name > 16
        && String.sub name 0 16 = "estimator_shard_"
        && r.Profile.count > 0
      | _ -> false
    in
    let publishes_ran =
      config.Net.Loadgen.publish_every > 0
      && requests >= config.Net.Loadgen.publish_every
    in
    if publishes_ran && not (List.exists is_shard_lock lock_rows) then
      or_die
        (Error
           "profile: no estimator_shard_* lock acquisitions recorded \
            (estimator shard locks missing from the Contended registry)");
    if publishes_ran then
      Printf.printf "estimator shard locks profiled (shards=%d): ok\n" shards;
    print_string (Net.Loadgen.render report);
    let in_ns (r : Profile.row) =
      { r with Profile.self = r.self * scale; total = r.total * scale }
    in
    let t =
      Mitos_util.Table.create
        ~header:[ "stack"; "self (ns)"; "total (ns)"; "count" ]
        ()
    in
    List.iter
      (fun (r : Profile.row) ->
        Mitos_util.Table.add_row t
          [
            String.concat ";" r.Profile.stack;
            string_of_int r.Profile.self;
            string_of_int r.Profile.total;
            string_of_int r.Profile.count;
          ])
      (Profile.top ~n:top_n (List.map in_ns span_rows @ lock_rows));
    Printf.printf "\ntop self-time (of %d stacks):\n%s"
      (List.length span_rows + List.length lock_rows)
      (Mitos_util.Table.render t);
    Printf.printf "wrote collapsed stacks to %s\n" out
  in
  let requests_arg =
    Arg.(
      value
      & opt int 2000
      & info [ "requests" ] ~docv:"N" ~doc:"Request frames to profile.")
  in
  let batch_arg =
    Arg.(
      value
      & opt int 10
      & info [ "batch" ] ~docv:"N" ~doc:"Decide requests per frame.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "profile.folded"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Collapsed-stack output (flamegraph.pl input: one \
             'frame;frame WEIGHT' line per stack, weights in ns).")
  in
  let top_arg =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the printed self-time table.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile the decision service: run a trace-propagating load \
          against a local TCP instance and write a collapsed-stack file \
          (client + server spans stitched, instrumented-lock wait/hold \
          appended) for flamegraph.pl.")
    Term.(
      const run $ requests_arg $ batch_arg $ net_workers_arg $ net_nodes_arg
      $ estimator_shards_arg ~default:4
      $ seed_arg $ tau_arg $ alpha_arg $ u_net_arg $ u_export_arg $ out_arg
      $ top_arg)

(* -- bench --------------------------------------------------------------- *)

let bench_compare_cmd =
  let run old_path new_path tolerance =
    protected @@ fun () ->
    let report =
      or_die
        (Exp.Bench_compare.of_files ~tolerance_pct:tolerance old_path new_path)
    in
    print_string (Exp.Bench_compare.render report);
    if not (Exp.Bench_compare.ok report) then exit 1
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline BENCH_decisions.json.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate BENCH_decisions.json.")
  in
  let tolerance_arg =
    Arg.(
      value
      & opt float 25.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed regression per metric, in percent.")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two BENCH_decisions.json files (from `bench micro') and \
          fail — exit 1 — when a gated metric regressed beyond the \
          tolerance. Exit 2 on unreadable or unparseable input.")
    Term.(const run $ old_arg $ new_arg $ tolerance_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "Benchmark utilities: compare BENCH_decisions.json files (the \
          perf-regression gate).")
    [ bench_compare_cmd ]

(* -- chaos -------------------------------------------------------------- *)

module Chaos = Mitos_chaos

let chaos_cmd =
  let run preset_name plan_file list seed nodes tenants duration transport
      rate attack_rate slots report_out bench_out =
    protected @@ fun () ->
    if list then begin
      List.iter
        (fun (name, doc) -> Printf.printf "%-14s %s\n" name doc)
        Chaos.Judge.presets;
      exit 0
    end;
    let scenario =
      match Chaos.Judge.preset preset_name with
      | Some s -> s
      | None ->
        or_die
          (Error
             (Printf.sprintf "unknown preset %S (try --list-presets)"
                preset_name))
    in
    let plan, scenario_name =
      match plan_file with
      | None -> (scenario.Chaos.Judge.plan, scenario.Chaos.Judge.scenario_name)
      | Some path ->
        let ic = open_in_bin path in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (match Chaos.Plan.parse text with
         | Ok p -> (p, Filename.remove_extension (Filename.basename path))
         | Error msg -> or_die (Error (path ^ ": " ^ msg)))
    in
    let transport =
      match transport with
      | "mem" -> Chaos.Fleetsim.Mem
      | "tcp" -> Chaos.Fleetsim.Tcp
      | other ->
        or_die (Error (Printf.sprintf "unknown transport %S (mem|tcp)" other))
    in
    let config = scenario.Chaos.Judge.config in
    let gen =
      {
        config.Chaos.Fleetsim.gen with
        Chaos.Tenantgen.seed;
        tenants =
          Option.value tenants
            ~default:config.Chaos.Fleetsim.gen.Chaos.Tenantgen.tenants;
        duration =
          Option.value duration
            ~default:config.Chaos.Fleetsim.gen.Chaos.Tenantgen.duration;
        rate_rps =
          Option.value rate
            ~default:config.Chaos.Fleetsim.gen.Chaos.Tenantgen.rate_rps;
        attack_rate =
          Option.value attack_rate
            ~default:config.Chaos.Fleetsim.gen.Chaos.Tenantgen.attack_rate;
      }
    in
    let config =
      {
        config with
        Chaos.Fleetsim.gen;
        transport;
        nodes = Option.value nodes ~default:config.Chaos.Fleetsim.nodes;
        estimator_slots =
          Option.value slots ~default:config.Chaos.Fleetsim.estimator_slots;
      }
    in
    let scenario =
      { scenario with Chaos.Judge.scenario_name; config; plan }
    in
    let report = or_die (Chaos.Judge.run scenario) in
    print_string (Chaos.Judge.render report);
    (match report_out with
    | None -> ()
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Chaos.Judge.to_json report));
      Printf.printf "report written to %s\n" path);
    (match bench_out with
    | None -> ()
    | Some path ->
      Chaos.Judge.merge_into_bench_json ~path report;
      Printf.printf "merged fleet into %s\n" path);
    exit (Chaos.Judge.exit_code report)
  in
  let preset_arg =
    Arg.(
      value
      & opt string "steady"
      & info [ "preset" ] ~docv:"NAME"
          ~doc:
            "Preset scenario: traffic shape, fault plan and SLO bar \
             (see --list-presets).")
  in
  let plan_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"PLAN"
          ~doc:
            "Fault-plan file in the DESIGN section-16 DSL (e.g. \
             `kill@t=5s node=2'); replaces the preset's plan.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list-presets" ] ~doc:"List preset scenarios and exit.")
  in
  let nodes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "nodes" ] ~docv:"N" ~doc:"Fleet size (servers).")
  in
  let tenants_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tenants" ] ~docv:"N" ~doc:"Tenant population.")
  in
  let duration_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Virtual scenario length.")
  in
  let transport_arg =
    Arg.(
      value
      & opt string "mem"
      & info [ "transport" ] ~docv:"mem|tcp"
          ~doc:
            "Fleet transport: in-process loopback (deterministic \
             reports) or real TCP servers on 127.0.0.1.")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Mean fleet-wide events per virtual second.")
  in
  let attack_rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "attack-rate" ] ~docv:"P"
          ~doc:"Per-event probability of an injected attack run.")
  in
  let slots_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "slots" ] ~docv:"N" ~doc:"Estimator slots per node.")
  in
  let report_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report-out" ] ~docv:"FILE"
          ~doc:
            "Write the deterministic JSON report (same seed, same \
             bytes) to $(docv).")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Merge a `fleet' row (events/s, virtual p99) into the \
             BENCH_decisions.json at $(docv) for `bench compare'.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a deterministic multi-tenant chaos scenario against a real \
          fleet — seeded tenants, fault injection per a plan DSL, judged \
          by SLO (detection recall vs a propagate-all oracle, over-taint, \
          virtual p99, unexpected retry exhaustions, burn-rate alerts, \
          estimator re-sync). Exit 0 when every SLO holds, 1 on a \
          violation, 2 on setup errors.")
    Term.(
      const run $ preset_arg $ plan_arg $ list_arg $ seed_arg $ nodes_arg
      $ tenants_arg $ duration_arg $ transport_arg $ rate_arg
      $ attack_rate_arg $ slots_arg $ report_out_arg $ bench_out_arg)

(* -- version ------------------------------------------------------------- *)

let version_cmd =
  let run () = print_endline Version.version in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the version (single source of truth: dune-project, shared \
          with mitos.opam and --version).")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "mitos-cli" ~version:Version.version
      ~doc:
        "MITOS: optimal decisioning for indirect flow propagation in DIFT \
         systems (ICDCS 2020 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; experiment_cmd; record_cmd; replay_cmd;
            inspect_cmd; disasm_cmd; map_cmd; why_cmd; solve_cmd; trace_cmd;
            sites_cmd; litmus_cmd; asm_cmd; attack_cmd; obs_bench_cmd;
            audit_cmd; serve_cmd; watch_cmd; alerts_cmd; fleet_cmd;
            serve_decisions_cmd;
            coordinator_cmd; node_cmd; cluster_cmd; loadgen_cmd;
            profile_cmd; bench_cmd; chaos_cmd;
            version_cmd ]))
